// Package storage is the disk half of the Storage Manager (§2.3, Fig 3):
// segment-file backed, CRC-framed append logs for the state a restart must
// not lose — HA output logs and connection-point history spilled past the
// memory budget — plus small atomic checkpoint files for dedup and
// stats-plane state.
//
// A Log is a directory of segment files. Each frame is
//
//	[uint32 LE payload length][uint32 LE CRC-32 (IEEE) of payload][payload]
//
// where the payload is one transport-encoded message (the same tuple
// encoding that crosses the wire, so the disk format inherits the codec's
// fuzzing and golden pins; wire bytes themselves are untouched). The tail
// segment is append-only; a crash can tear its last frame, and the reader
// treats any short or CRC-failing tail frame as the end of the log rather
// than an error — everything before it is intact by checksum.
//
// Truncation and eviction operate on whole segments: a sealed segment
// whose highest tuple sequence falls below the truncation point is
// deleted with one unlink, which is what makes a multi-gigabyte output
// log cheap to drain.
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/stream"
	"repro/internal/transport"
)

// frameHeaderSize is the fixed per-frame overhead: length + CRC.
const frameHeaderSize = 8

// maxFramePayload fences hostile or corrupt length fields: no legitimate
// frame exceeds it, so the reader can reject a huge length without
// attempting the allocation.
const maxFramePayload = 16 << 20

// DefaultSegmentBytes is the rotation threshold when LogConfig leaves it
// zero: small enough that truncation reclaims space promptly, large
// enough that steady appends do not thrash the directory.
const DefaultSegmentBytes = 1 << 20

// LogConfig tunes one segment log.
type LogConfig struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (0 means DefaultSegmentBytes).
	SegmentBytes int
	// SyncEvery fsyncs the active segment after every N appends (0 means
	// sync on every append — the durable-send commit point; raise it when
	// the caller batches its own sync via Sync).
	SyncEvery int
}

// segment is one on-disk file's index entry.
type segment struct {
	path   string
	index  uint64 // monotonically increasing file ordinal
	bytes  int64
	frames int
	tuples int
	minSeq uint64 // lowest tuple Seq in the segment (0 when empty)
	maxSeq uint64 // highest tuple Seq in the segment
}

// Log is a segment-file backed append log of transport messages. All
// methods are safe for concurrent use.
type Log struct {
	mu   sync.Mutex
	dir  string
	cfg  LogConfig
	segs []segment // sealed segments, oldest first
	act  segment   // the active (append) segment's index entry
	f    *os.File  // active segment file, nil until first append
	buf  []byte    // frame scratch
	// sinceSync counts appends since the last fsync.
	sinceSync int
	// appended/evicted are lifetime counters across rotations.
	appended uint64
	evicted  uint64
	// torn records whether Open found (and ignored) a torn tail frame.
	torn bool
}

// OpenLog opens (creating if needed) the segment log rooted at dir and
// indexes every existing segment, tolerating a torn tail frame in the
// newest one. Appends resume in a fresh segment after the newest existing
// one, so a torn tail is never appended over.
func OpenLog(dir string, cfg LogConfig) (*Log, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	l := &Log{dir: dir, cfg: cfg}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	for _, e := range entries {
		idx, ok := segmentIndex(e.Name())
		if !ok {
			continue
		}
		path := filepath.Join(dir, e.Name())
		seg := segment{path: path, index: idx}
		torn, err := scanSegment(path, func(m transport.Msg, frameBytes int) {
			noteFrame(&seg, m, frameBytes)
		})
		if err != nil {
			return nil, err
		}
		l.torn = l.torn || torn
		l.segs = append(l.segs, seg)
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].index < l.segs[j].index })
	for _, s := range l.segs {
		l.appended += uint64(s.tuples)
	}
	next := uint64(1)
	if n := len(l.segs); n > 0 {
		next = l.segs[n-1].index + 1
	}
	l.act = segment{path: l.segPath(next), index: next}
	return l, nil
}

func (l *Log) segPath(index uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%016d.log", index))
}

// segmentIndex parses a segment file name, ok=false for foreign files.
func segmentIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	idx, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

func noteFrame(seg *segment, m transport.Msg, frameBytes int) {
	seg.bytes += int64(frameBytes)
	seg.frames++
	seg.tuples += len(m.Tuples)
	for _, t := range m.Tuples {
		if seg.minSeq == 0 || t.Seq < seg.minSeq {
			seg.minSeq = t.Seq
		}
		if t.Seq > seg.maxSeq {
			seg.maxSeq = t.Seq
		}
	}
}

// Append frames and writes one message to the active segment, rotating
// first when the segment is full. The message's tuples' Seq fields drive
// segment min/max indexing (TruncateBefore); BaseSeq and Stream travel
// with the frame for the caller's own use (the output log stores the
// origin sequence in BaseSeq).
func (l *Log) Append(m transport.Msg) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.act.bytes >= int64(l.cfg.SegmentBytes) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if cap(l.buf) < frameHeaderSize {
		l.buf = make([]byte, frameHeaderSize, 512)
	}
	l.buf = l.buf[:frameHeaderSize]
	l.buf = transport.Encode(l.buf, m)
	payload := l.buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	noteFrame(&l.act, m, len(l.buf))
	l.appended += uint64(len(m.Tuples))
	l.sinceSync++
	if l.cfg.SyncEvery <= 0 || l.sinceSync >= l.cfg.SyncEvery {
		l.sinceSync = 0
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("storage: seal sync: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("storage: seal: %w", err)
		}
		l.segs = append(l.segs, l.act)
		l.act = segment{path: l.segPath(l.act.index + 1), index: l.act.index + 1}
	}
	f, err := os.OpenFile(l.act.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: rotate: %w", err)
	}
	l.f = f
	l.sinceSync = 0
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sinceSync = 0
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Replay streams every retained message, oldest segment first, into fn;
// returning false from fn stops the replay. A torn tail frame ends the
// replay cleanly. Appends are blocked for the duration.
func (l *Log) Replay(fn func(transport.Msg) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("storage: replay sync: %w", err)
		}
	}
	stopped := false
	for _, seg := range append(append([]segment(nil), l.segs...), l.act) {
		if seg.frames == 0 || stopped {
			continue
		}
		if _, err := scanSegment(seg.path, func(m transport.Msg, _ int) {
			if !stopped && !fn(m) {
				stopped = true
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// ReplayTuples is Replay flattened to tuples.
func (l *Log) ReplayTuples(fn func(t stream.Tuple, baseSeq uint64) bool) error {
	return l.Replay(func(m transport.Msg) bool {
		for _, t := range m.Tuples {
			if !fn(t, m.BaseSeq) {
				return false
			}
		}
		return true
	})
}

// TruncateBefore unlinks every sealed segment whose highest tuple Seq is
// strictly below seq, returning how many tuples were freed. The active
// segment and any sealed segment straddling the boundary are retained —
// disk truncation is conservative, a superset of the in-memory log.
func (l *Log) TruncateBefore(seq uint64) (tuples int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for _, seg := range l.segs {
		if seg.maxSeq < seq && seg.frames > 0 {
			if rmErr := os.Remove(seg.path); rmErr != nil && err == nil {
				err = fmt.Errorf("storage: truncate: %w", rmErr)
			}
			tuples += seg.tuples
			l.evicted += uint64(seg.tuples)
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return tuples, err
}

// EvictOldest unlinks sealed segments, oldest first, until the log's
// total footprint is at or below maxBytes, returning how many tuples and
// bytes were dropped. The active segment is never evicted. This is the
// disk budget's enforcement: unlike TruncateBefore the dropped tuples
// were not known safe — the caller must account for them as lost history.
func (l *Log) EvictOldest(maxBytes int64) (tuples int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.act.bytes
	for _, seg := range l.segs {
		total += seg.bytes
	}
	i := 0
	for ; i < len(l.segs) && total > maxBytes; i++ {
		seg := l.segs[i]
		os.Remove(seg.path)
		total -= seg.bytes
		tuples += seg.tuples
		bytes += seg.bytes
		l.evicted += uint64(seg.tuples)
	}
	l.segs = append(l.segs[:0], l.segs[i:]...)
	return tuples, bytes
}

// Bytes returns the log's total on-disk footprint.
func (l *Log) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.act.bytes
	for _, seg := range l.segs {
		total += seg.bytes
	}
	return total
}

// Tuples returns how many tuples the log currently retains.
func (l *Log) Tuples() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.act.tuples
	for _, seg := range l.segs {
		n += seg.tuples
	}
	return n
}

// Segments returns how many segment files the log spans (sealed + active).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.segs)
	if l.act.frames > 0 {
		n++
	}
	return n
}

// Appended returns the lifetime count of tuples ever appended (including
// tuples indexed from disk at Open).
func (l *Log) Appended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Evicted returns the lifetime count of tuples dropped by TruncateBefore
// and EvictOldest.
func (l *Log) Evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Torn reports whether Open found a torn tail frame (evidence of a crash
// mid-append; the frame was ignored).
func (l *Log) Torn() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.torn
}

// Close seals the active segment. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// scanSegment reads every intact frame of one segment file into fn and
// reports whether a torn tail was found. Corruption beyond frame framing
// (a payload that passes CRC but fails the codec) is an error: the CRC
// vouches the bytes are exactly what was written, so a decode failure
// means a writer bug, not a crash artifact.
func scanSegment(path string, fn func(m transport.Msg, frameBytes int)) (torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("storage: %w", err)
	}
	pos := 0
	for {
		m, used, ok, err := decodeFrame(data[pos:])
		if err != nil {
			return false, fmt.Errorf("storage: %s@%d: %w", filepath.Base(path), pos, err)
		}
		if !ok {
			return used > 0 || pos < len(data), nil
		}
		fn(m, used)
		pos += used
	}
}

// decodeFrame parses one frame from src. ok=false means a clean end: src
// is empty or holds a torn/corrupt tail (used is then the length of the
// ignored tail, for diagnostics). An error means an intact frame whose
// payload fails the codec.
func decodeFrame(src []byte) (m transport.Msg, used int, ok bool, err error) {
	if len(src) < frameHeaderSize {
		return m, len(src), false, nil
	}
	n := binary.LittleEndian.Uint32(src[0:4])
	sum := binary.LittleEndian.Uint32(src[4:8])
	if n > maxFramePayload || int(n) > len(src)-frameHeaderSize {
		return m, len(src), false, nil
	}
	payload := src[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return m, len(src), false, nil
	}
	msg, consumed, err := transport.Decode(payload)
	if err != nil {
		return m, 0, false, fmt.Errorf("frame payload: %w", err)
	}
	if consumed != len(payload) {
		return m, 0, false, fmt.Errorf("frame payload: %d trailing bytes", len(payload)-consumed)
	}
	return msg, frameHeaderSize + int(n), true, nil
}

// DecodeSegment parses an in-memory segment image, returning the intact
// messages and whether a torn tail was ignored. The fuzz target drives
// this directly; scanSegment is the file-reading wrapper.
func DecodeSegment(data []byte) (msgs []transport.Msg, torn bool, err error) {
	pos := 0
	for {
		m, used, ok, err := decodeFrame(data[pos:])
		if err != nil {
			return msgs, false, err
		}
		if !ok {
			return msgs, used > 0 || pos < len(data), nil
		}
		msgs = append(msgs, m)
		pos += used
	}
}
