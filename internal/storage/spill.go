package storage

import (
	"sync/atomic"

	"repro/internal/stream"
	"repro/internal/transport"
)

// DefaultSpillBytes bounds one connection point's on-disk history when
// the caller passes no budget: generous next to the in-memory window,
// small enough that a runaway stream cannot fill the disk.
const DefaultSpillBytes = 256 << 20

// CPSpill adapts a segment Log to stream.Spill: tuples evicted from a
// connection point's in-memory window append here, whole old segments are
// unlinked once the disk budget is exceeded, and Replay feeds ad hoc
// attachment (and restart recovery — a reopened Log already carries the
// prior process's spilled history).
type CPSpill struct {
	log      *Log
	maxBytes int64
	errs     atomic.Uint64
}

// NewCPSpill wraps log with a disk budget (<=0 means DefaultSpillBytes).
func NewCPSpill(log *Log, maxBytes int64) *CPSpill {
	if maxBytes <= 0 {
		maxBytes = DefaultSpillBytes
	}
	return &CPSpill{log: log, maxBytes: maxBytes}
}

// Append writes one evicted tuple through to disk and enforces the disk
// budget, returning how many tuples fell off the old end. A write error
// counts the tuple itself as dropped — the caller's Evicted() then tells
// the truth about history no replay can return.
func (s *CPSpill) Append(t stream.Tuple) (dropped int) {
	if err := s.log.Append(transport.Msg{Kind: transport.KindData, Tuples: []stream.Tuple{t}}); err != nil {
		s.errs.Add(1)
		return 1
	}
	n, _ := s.log.EvictOldest(s.maxBytes)
	return n
}

// Replay returns every spilled tuple still on disk, oldest first.
func (s *CPSpill) Replay() []stream.Tuple {
	var out []stream.Tuple
	s.log.ReplayTuples(func(t stream.Tuple, _ uint64) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Bytes returns the spill's on-disk footprint.
func (s *CPSpill) Bytes() int64 { return s.log.Bytes() }

// Errors returns how many appends failed (each counted as a drop).
func (s *CPSpill) Errors() uint64 { return s.errs.Load() }

// Log exposes the backing segment log (telemetry, tests).
func (s *CPSpill) Log() *Log { return s.log }
