package storage

import (
	"repro/internal/stream"
	"repro/internal/transport"
)

// OutputSink adapts a segment Log to the HA output log's durable sink
// (ha.DurableSink, satisfied structurally so storage stays independent
// of the protocol package): each appended entry is one frame whose
// BaseSeq carries the origin sequence and whose single tuple carries the
// link sequence in Seq, and truncation maps to whole-segment unlinking.
// The log is opened with sync-on-every-append (Manager.OutputLog), which
// is what makes LinkSender.Send's return the durability commit point.
type OutputSink struct {
	log *Log
}

// NewOutputSink wraps log as a durable output-log sink.
func NewOutputSink(log *Log) *OutputSink { return &OutputSink{log: log} }

// Append persists one stamped output-log entry.
func (s *OutputSink) Append(origin uint64, t stream.Tuple) error {
	return s.log.Append(transport.Msg{
		Kind:    transport.KindData,
		BaseSeq: origin,
		Tuples:  []stream.Tuple{t},
	})
}

// TruncateBefore drops sealed segments wholly below the link seq.
func (s *OutputSink) TruncateBefore(seq uint64) error {
	_, err := s.log.TruncateBefore(seq)
	return err
}

// Log exposes the backing segment log (telemetry, tests).
func (s *OutputSink) Log() *Log { return s.log }

// RecoveredEntries replays a durable output log into (origin, tuple)
// pairs in link-sequence order — the input ha.NewOutputLogFrom wants.
// The generic pair type keeps storage decoupled from ha; callers convert
// with a one-line loop or pass a closure to ReplayTuples directly.
func (s *OutputSink) RecoveredEntries() (origins []uint64, tuples []stream.Tuple, err error) {
	err = s.log.ReplayTuples(func(t stream.Tuple, base uint64) bool {
		origins = append(origins, base)
		tuples = append(tuples, t)
		return true
	})
	return origins, tuples, err
}
