// Package sketch implements a compact, mergeable quantile sketch with a
// bounded relative error — the DDSketch construction: values are hashed
// into log-spaced buckets (bucket k covers (γ^(k-1), γ^k] with
// γ = (1+α)/(1-α)), so any value reported for a quantile is within a
// factor (1±α) of an exact-sort oracle's answer at the same rank.
//
// The store is a fixed-size dense bucket array with collapse-lowest
// semantics: when the observed value range outgrows the array, the
// lowest buckets fold into one catch-all floor bucket. High quantiles —
// the p95/p99 the latency-SLO plane lives on — keep the α bound as long
// as they do not fall into the collapsed floor, which requires the value
// range to span more than numBuckets buckets (≈ 9 decades at the default
// α = 1%). Memory is constant (one 4 KiB array per sketch), Record
// allocates nothing, and two sketches with the same α merge losslessly:
// merge(a,b) answers quantile queries over the concatenated stream with
// the same α bound (pinned by property tests).
//
// Sketches are NOT safe for concurrent use; callers synchronize. The
// engine monitor records under its per-output mutex, the stats store
// under its own lock — the same discipline the windowed store uses.
package sketch

import (
	"fmt"
	"math"
)

const (
	// DefaultAlpha is the relative-error bound used across the plane:
	// a reported p99 of 10ms means the exact value at that rank lies in
	// [9.9ms, 10.1ms].
	DefaultAlpha = 0.01

	// numBuckets fixes the dense store's size. With α = 1% the bucket
	// width is ln γ ≈ 0.02, so 1024 buckets span e^(1024·0.02) ≈ 8·10^8 —
	// almost nine decades before the lowest buckets start collapsing.
	numBuckets = 1024
)

// Sketch is one quantile sketch. The zero value is unusable; construct
// with New or DecodeSketch.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	base int // bucket index 0 holds key `base`; keys below it are collapsed
	hi   int // highest occupied bucket index, -1 when no keyed buckets

	// collapsed records that mass from distinct keys has been folded
	// into the floor bucket: quantiles whose exact value falls at or
	// below γ^base no longer carry the α bound. Advisory only — not
	// transmitted on the wire.
	collapsed bool

	zero  uint64 // values in [0, 1): below the first log bucket
	count uint64
	sum   float64
	minV  float64
	maxV  float64

	buckets [numBuckets]uint64
}

// New returns an empty sketch with relative-error bound alpha; values
// outside (0, 0.5] fall back to DefaultAlpha.
func New(alpha float64) *Sketch {
	if !(alpha > 0 && alpha <= 0.5) { // !(...) also catches NaN
		alpha = DefaultAlpha
	}
	s := &Sketch{alpha: alpha}
	s.initGamma()
	s.hi = -1
	return s
}

func (s *Sketch) initGamma() {
	s.gamma = (1 + s.alpha) / (1 - s.alpha)
	s.lnGamma = math.Log(s.gamma)
}

// Alpha returns the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns how many values have been recorded.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of all recorded values.
func (s *Sketch) Sum() float64 { return s.sum }

// Min returns the smallest recorded value (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.minV
}

// Max returns the largest recorded value (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.maxV
}

// Collapsed reports whether the value range outgrew the bucket window:
// quantiles at or below the floor bucket lose the α bound (they can only
// be overestimated); everything above keeps it.
func (s *Sketch) Collapsed() bool { return s.collapsed }

// Buckets calls fn once per occupied bucket in ascending value order
// with the bucket's upper value bound and the cumulative count through
// it — the (le, count) pairs of a Prometheus histogram. The zero bucket
// reports upper bound 1 (it covers [0, 1)); keyed bucket k reports γ^k.
func (s *Sketch) Buckets(fn func(upper float64, cum uint64)) {
	var cum uint64
	if s.zero > 0 {
		cum = s.zero
		fn(1, cum)
	}
	for i := 0; i <= s.hi; i++ {
		if s.buckets[i] == 0 {
			continue
		}
		cum += s.buckets[i]
		fn(math.Exp(float64(s.base+i)*s.lnGamma), cum)
	}
}

// key maps a value >= 1 onto its bucket key: the smallest k with
// γ^k >= v, so bucket k covers (γ^(k-1), γ^k].
func (s *Sketch) key(v float64) int {
	return int(math.Ceil(math.Log(v) / s.lnGamma))
}

// valueOf returns bucket key k's representative value 2γ^k/(γ+1) — the
// point whose relative distance to both bucket edges is exactly α.
func (s *Sketch) valueOf(k int) float64 {
	return math.Exp(float64(k)*s.lnGamma) * 2 / (s.gamma + 1)
}

// Record folds one value into the sketch. Negative values clamp to 0,
// NaN is dropped. Record never allocates.
func (s *Sketch) Record(v float64) { s.RecordN(v, 1) }

// RecordN folds n copies of v into the sketch.
func (s *Sketch) RecordN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	if math.IsInf(v, 1) {
		v = math.MaxFloat64
	}
	if s.count == 0 || v < s.minV {
		s.minV = v
	}
	if s.count == 0 || v > s.maxV {
		s.maxV = v
	}
	s.count += n
	s.sum += v * float64(n)
	if v < 1 {
		s.zero += n
		return
	}
	s.addKey(s.key(v), n)
}

// addKey adds n observations at bucket key k, shifting or collapsing the
// fixed window as needed. It does not touch count/sum/min/max.
func (s *Sketch) addKey(k int, n uint64) {
	if s.hi < 0 {
		s.base = k
		s.buckets[0] = n
		s.hi = 0
		return
	}
	idx := k - s.base
	switch {
	case idx >= 0 && idx < numBuckets:
		s.buckets[idx] += n
		if idx > s.hi {
			s.hi = idx
		}
	case idx >= numBuckets:
		// New key above the window: raise base, folding the lowest
		// buckets into the new floor bucket (collapse-lowest).
		s.shiftUp(idx - numBuckets + 1)
		s.buckets[k-s.base] += n
		if k-s.base > s.hi {
			s.hi = k - s.base
		}
	default: // idx < 0
		// New key below the window: lower base if the occupied span
		// leaves room, else the value joins the collapsed floor.
		d := -idx
		if s.hi+d < numBuckets {
			s.shiftDown(d)
			s.buckets[0] += n
		} else {
			s.buckets[0] += n // floor bucket: value overestimated
			s.collapsed = true
		}
	}
}

// shiftUp raises base by d: bucket contents move down d slots and the
// shifted-out lowest buckets merge into the new index 0.
func (s *Sketch) shiftUp(d int) {
	if d >= numBuckets {
		var all uint64
		for i := 0; i <= s.hi; i++ {
			all += s.buckets[i]
			s.buckets[i] = 0
		}
		s.buckets[0] = all
		s.base += d
		s.hi = 0
		s.collapsed = true
		return
	}
	var low uint64
	for i := 0; i < d; i++ {
		low += s.buckets[i]
	}
	if low > 0 {
		s.collapsed = true
	}
	copy(s.buckets[:], s.buckets[d:])
	for i := numBuckets - d; i < numBuckets; i++ {
		s.buckets[i] = 0
	}
	s.buckets[0] += low
	s.base += d
	s.hi -= d
	if s.hi < 0 {
		s.hi = 0
	}
}

// shiftDown lowers base by d: bucket contents move up d slots (the
// caller guarantees hi+d < numBuckets).
func (s *Sketch) shiftDown(d int) {
	copy(s.buckets[d:], s.buckets[:numBuckets-d])
	for i := 0; i < d; i++ {
		s.buckets[i] = 0
	}
	s.base -= d
	s.hi += d
}

// Quantile estimates the q'th quantile. q <= 0 returns the exact min,
// q >= 1 the exact max; in between the answer is the representative
// value of the bucket holding rank q·(count-1), clamped to [min, max] —
// within relative error α of the exact-sort value at that rank for any
// rank outside the collapsed floor.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return s.minV
	}
	if q >= 1 {
		return s.maxV
	}
	rank := uint64(q * float64(s.count-1))
	if rank < s.zero {
		// Sub-1 values: min is the tightest honest answer.
		return s.minV
	}
	seen := s.zero
	for i := 0; i <= s.hi; i++ {
		c := s.buckets[i]
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			v := s.valueOf(s.base + i)
			if v < s.minV {
				v = s.minV
			}
			if v > s.maxV {
				v = s.maxV
			}
			return v
		}
	}
	return s.maxV
}

// Merge folds o into s. Both sketches must share the same α; merging is
// lossless — quantiles of the merged sketch carry the same α bound over
// the concatenated value stream. A nil or empty o is a no-op.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("sketch: merge alpha mismatch (%v vs %v)", s.alpha, o.alpha)
	}
	if s.count == 0 {
		s.minV, s.maxV = o.minV, o.maxV
	} else {
		if o.minV < s.minV {
			s.minV = o.minV
		}
		if o.maxV > s.maxV {
			s.maxV = o.maxV
		}
	}
	s.count += o.count
	s.sum += o.sum
	s.zero += o.zero
	if o.collapsed {
		s.collapsed = true
	}
	// High-to-low so the window grows upward before low keys arrive,
	// matching the collapse-lowest bias toward accurate upper quantiles.
	for i := o.hi; i >= 0; i-- {
		if c := o.buckets[i]; c > 0 {
			s.addKey(o.base+i, c)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := *s
	return &c
}

// CopyFrom makes s an exact copy of o without allocating.
func (s *Sketch) CopyFrom(o *Sketch) { *s = *o }

// Reset empties the sketch, keeping its α.
func (s *Sketch) Reset() {
	alpha := s.alpha
	*s = Sketch{alpha: alpha}
	s.initGamma()
	s.hi = -1
}

// Delta returns the observations cur has accumulated beyond prev, for
// differencing successive cumulative snapshots into per-window sketches.
// Both must share cur's α (a mismatched or nil prev yields a clone of
// cur). Per-key counts are differenced and clamped at zero; if a
// collapse moved mass between snapshots the affected floor counts land
// in the collapsed bucket — a bounded, monitoring-grade approximation.
func Delta(cur, prev *Sketch) *Sketch {
	if prev == nil || prev.count == 0 || prev.alpha != cur.alpha {
		return cur.Clone()
	}
	d := New(cur.alpha)
	if cur.zero > prev.zero {
		d.zero = cur.zero - prev.zero
	}
	d.count = d.zero
	for i := 0; i <= cur.hi; i++ {
		k := cur.base + i
		c := cur.buckets[i]
		if pi := k - prev.base; pi >= 0 && pi <= prev.hi {
			pc := prev.buckets[pi]
			if c <= pc {
				continue
			}
			c -= pc
		}
		if c > 0 {
			d.addKey(k, c)
			d.count += c
		}
	}
	if d.count == 0 {
		return d
	}
	if ds := cur.sum - prev.sum; ds > 0 {
		d.sum = ds
	}
	// Min/max of the delta window are unknown; bucket edges are the
	// tightest bounds the differenced counts support.
	if d.zero > 0 {
		d.minV = 0
	} else {
		lo := 0
		for lo <= d.hi && d.buckets[lo] == 0 {
			lo++
		}
		d.minV = math.Exp(float64(d.base+lo-1) * d.lnGamma) // lower bucket edge
	}
	if d.hi >= 0 && d.buckets[d.hi] > 0 {
		d.maxV = math.Exp(float64(d.base+d.hi) * d.lnGamma) // upper bucket edge
	} else {
		d.maxV = 1
	}
	if d.maxV < d.minV {
		d.maxV = d.minV
	}
	return d
}
