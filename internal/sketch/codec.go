package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire form of a sketch (carried inside stats digests and served raw by
// /latency):
//
//	8 bytes alpha (float64 big-endian bits)
//	uvarint zero-bucket count (values in [0,1))
//	8 bytes sum | 8 bytes min | 8 bytes max (float64 bits)
//	uvarint span (number of encoded buckets; 0 = no keyed buckets)
//	if span > 0:
//	  varint firstKey (bucket key of the first encoded count)
//	  span × uvarint bucket counts (zero runs inside the span allowed)
//
// The total count is not transmitted — it is derived as zero + Σ counts,
// so a decoded sketch can never disagree with its own buckets. Floats
// travel as raw bits (NaN payloads in sum/min/max survive) exactly like
// the digest codec; alpha is validated into (0, 0.5] so a hostile buffer
// cannot smuggle a degenerate bucket base. The encoder trims leading and
// trailing empty buckets, making the encoding canonical: decode followed
// by re-encode is byte-stable for every encoder-produced buffer.

// maxKey bounds |firstKey| and firstKey+span. The tightest real key is
// ln(MaxFloat64)/ln γ ≈ 3.5e5 at the smallest accepted α; 2^21 leaves
// headroom without letting hostile keys near integer overflow.
const maxKey = 1 << 21

// minAlpha rejects wire alphas so small the bucket math degenerates.
const minAlpha = 1e-6

// AppendSketch appends the wire form of s to dst and returns the
// extended slice. A nil s encodes as an empty sketch with DefaultAlpha.
func AppendSketch(dst []byte, s *Sketch) []byte {
	if s == nil {
		s = New(DefaultAlpha)
	}
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.alpha))
	dst = binary.AppendUvarint(dst, s.zero)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.sum))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.minV))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(s.maxV))
	lo, hi := 0, s.hi
	for lo <= hi && s.buckets[lo] == 0 {
		lo++
	}
	for hi >= lo && s.buckets[hi] == 0 {
		hi--
	}
	if hi < lo {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(hi-lo+1))
	dst = binary.AppendVarint(dst, int64(s.base+lo))
	for i := lo; i <= hi; i++ {
		dst = binary.AppendUvarint(dst, s.buckets[i])
	}
	return dst
}

// DecodeSketch parses one sketch from src, returning it and the bytes
// consumed. Counts and keys are validated against the remaining buffer
// and the fixed bucket range, so hostile input cannot panic, allocate
// unboundedly, or overflow the derived total.
func DecodeSketch(src []byte) (*Sketch, int, error) {
	pos := 0
	alphaBits, used, err := readBits(src)
	if err != nil {
		return nil, 0, err
	}
	pos += used
	alpha := math.Float64frombits(alphaBits)
	if !(alpha >= minAlpha && alpha <= 0.5) { // !(...) also rejects NaN
		return nil, 0, fmt.Errorf("sketch: alpha %v out of range", alpha)
	}
	s := New(alpha)
	zero, used, err := readUvarint(src[pos:])
	if err != nil {
		return nil, 0, err
	}
	pos += used
	s.zero = zero
	s.count = zero
	for _, f := range []*float64{&s.sum, &s.minV, &s.maxV} {
		bits, used, err := readBits(src[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		*f = math.Float64frombits(bits)
	}
	span, used, err := readUvarint(src[pos:])
	if err != nil {
		return nil, 0, err
	}
	pos += used
	if span > numBuckets {
		return nil, 0, fmt.Errorf("sketch: span %d exceeds %d buckets", span, numBuckets)
	}
	// Every encoded count is at least one byte, so a span beyond the
	// remaining buffer is corrupt regardless of content.
	if span > uint64(len(src)-pos) {
		return nil, 0, fmt.Errorf("sketch: truncated bucket list")
	}
	if span > 0 {
		firstKey, used, err := readVarint(src[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		if firstKey < -maxKey || firstKey > maxKey {
			return nil, 0, fmt.Errorf("sketch: bucket key %d out of range", firstKey)
		}
		for i := uint64(0); i < span; i++ {
			c, used, err := readUvarint(src[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += used
			if c == 0 {
				continue
			}
			if s.count+c < s.count {
				return nil, 0, fmt.Errorf("sketch: count overflow")
			}
			s.count += c
			s.addKey(int(firstKey)+int(i), c)
		}
	}
	return s, pos, nil
}

func readBits(src []byte) (uint64, int, error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("sketch: truncated float")
	}
	return binary.BigEndian.Uint64(src), 8, nil
}

func readUvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("sketch: bad uvarint")
	}
	return v, n, nil
}

func readVarint(src []byte) (int64, int, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("sketch: bad varint")
	}
	return v, n, nil
}
