package sketch

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQuantile mirrors the sketch's rank convention on a sorted slice:
// the element at rank floor(q·(n-1)).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// withinAlpha checks the DDSketch guarantee: est within (1±α) of exact.
func withinAlpha(t *testing.T, label string, est, exact, alpha float64) {
	t.Helper()
	if exact == 0 {
		if est != 0 {
			t.Errorf("%s: est %v for exact 0", label, est)
		}
		return
	}
	if rel := math.Abs(est-exact) / exact; rel > alpha+1e-9 {
		t.Errorf("%s: est %v vs exact %v: relative error %.4f > α %.4f",
			label, est, exact, rel, alpha)
	}
}

// generators produce value streams with different shapes; every property
// below must hold regardless of distribution.
var generators = map[string]func(rng *rand.Rand) float64{
	"uniform":   func(rng *rand.Rand) float64 { return 1 + rng.Float64()*1e6 },
	"lognormal": func(rng *rand.Rand) float64 { return math.Exp(rng.NormFloat64()*2 + 8) },
	"bimodal": func(rng *rand.Rand) float64 {
		if rng.Intn(10) == 0 {
			return 1e6 + rng.Float64()*1e7 // slow tail
		}
		return 100 + rng.Float64()*1000
	},
}

func TestQuantileWithinRelativeErrorBound(t *testing.T) {
	quantiles := []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}
	for name, gen := range generators {
		for _, alpha := range []float64{0.005, DefaultAlpha, 0.05} {
			rng := rand.New(rand.NewSource(42))
			s := New(alpha)
			vals := make([]float64, 20000)
			for i := range vals {
				vals[i] = gen(rng)
				s.Record(vals[i])
			}
			sort.Float64s(vals)
			if s.Count() != uint64(len(vals)) {
				t.Fatalf("%s: count %d != %d", name, s.Count(), len(vals))
			}
			for _, q := range quantiles {
				ex := exactQuantile(vals, q)
				if s.Collapsed() && ex <= math.Exp(float64(s.base)*s.lnGamma)*(1+alpha) {
					// Inside the collapsed floor the bound is forfeited
					// (documented); it may only be overestimated.
					if est := s.Quantile(q); est < ex*(1-alpha)-1e-9 {
						t.Errorf("%s: collapsed floor underestimated: %v vs %v", name, est, ex)
					}
					continue
				}
				withinAlpha(t, name, s.Quantile(q), ex, alpha)
			}
			if s.Quantile(0) != vals[0] || s.Quantile(1) != vals[len(vals)-1] {
				t.Errorf("%s: extremes not exact: %v/%v vs %v/%v", name,
					s.Quantile(0), s.Quantile(1), vals[0], vals[len(vals)-1])
			}
		}
	}
}

// TestMergeWithinBound is the mergeability property: quantiles of
// merge(a, b) obey the α bound over the concatenated stream, for
// arbitrary splits of the stream.
func TestMergeWithinBound(t *testing.T) {
	for name, gen := range generators {
		rng := rand.New(rand.NewSource(7))
		a, b := New(DefaultAlpha), New(DefaultAlpha)
		var all []float64
		for i := 0; i < 30000; i++ {
			v := gen(rng)
			all = append(all, v)
			// Uneven split: a sees the bulk, b a biased slice.
			if rng.Intn(4) == 0 {
				b.Record(v)
			} else {
				a.Record(v)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("%s: merge: %v", name, err)
		}
		sort.Float64s(all)
		if a.Count() != uint64(len(all)) {
			t.Fatalf("%s: merged count %d != %d", name, a.Count(), len(all))
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
			withinAlpha(t, name+"/merged", a.Quantile(q), exactQuantile(all, q), DefaultAlpha)
		}
		if got, want := a.Min(), all[0]; got != want {
			t.Errorf("%s: merged min %v != %v", name, got, want)
		}
		if got, want := a.Max(), all[len(all)-1]; got != want {
			t.Errorf("%s: merged max %v != %v", name, got, want)
		}
	}
}

func TestMergeAlphaMismatch(t *testing.T) {
	a, b := New(0.01), New(0.02)
	b.Record(5)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different α must error")
	}
	if a.Count() != 0 {
		t.Fatalf("failed merge mutated the receiver: count %d", a.Count())
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sketches := []*Sketch{New(DefaultAlpha)} // empty
	s := New(DefaultAlpha)
	for i := 0; i < 5000; i++ {
		s.Record(math.Exp(rng.NormFloat64()*3 + 6))
	}
	sketches = append(sketches, s)
	small := New(0.05)
	small.Record(0.25) // zero bucket
	small.Record(3e9)
	sketches = append(sketches, small)
	for i, want := range sketches {
		buf := AppendSketch(nil, want)
		got, n, err := DecodeSketch(buf)
		if err != nil {
			t.Fatalf("sketch %d: decode: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("sketch %d: consumed %d of %d", i, n, len(buf))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sketch %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		// Trailing bytes must be left untouched.
		if _, n2, err := DecodeSketch(append(buf, 0xde, 0xad)); err != nil || n2 != len(buf) {
			t.Fatalf("sketch %d: trailing bytes: n=%d err=%v", i, n2, err)
		}
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	good := AppendSketch(nil, func() *Sketch {
		s := New(DefaultAlpha)
		for i := 1; i <= 100; i++ {
			s.Record(float64(i * 1000))
		}
		return s
	}())
	// Every proper prefix fails cleanly.
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeSketch(good[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
	// Alpha out of range (1.5 and NaN).
	bad := append([]byte{}, good...)
	for _, bits := range []uint64{math.Float64bits(1.5), math.Float64bits(math.NaN())} {
		for j := 0; j < 8; j++ {
			bad[j] = byte(bits >> (56 - 8*j))
		}
		if _, _, err := DecodeSketch(bad); err == nil {
			t.Error("hostile alpha decoded without error")
		}
	}
	// Oversized span.
	huge := AppendSketch(nil, New(DefaultAlpha))
	huge[len(huge)-1] = 0xff // corrupt the span uvarint
	huge = append(huge, 0xff, 0x7f)
	if _, _, err := DecodeSketch(huge); err == nil {
		t.Error("oversized span decoded without error")
	}
}

// TestCollapseKeepsUpperQuantiles: a value range wider than the bucket
// window collapses the lowest buckets, but p95/p99 (which live far from
// the floor) keep the α bound; memory stays fixed throughout.
func TestCollapseKeepsUpperQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New(0.05) // coarse α so 1..1e15 overflows the window
	var vals []float64
	for i := 0; i < 20000; i++ {
		v := math.Pow(10, rng.Float64()*15) // 1 .. 1e15
		vals = append(vals, v)
		s.Record(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.9, 0.95, 0.99} {
		withinAlpha(t, "collapsed", s.Quantile(q), exactQuantile(vals, q), 0.05)
	}
	// The collapsed floor only ever overestimates: low quantiles must not
	// report below the exact value's α envelope.
	if est, ex := s.Quantile(0.05), exactQuantile(vals, 0.05); est < ex*(1-0.05) {
		t.Errorf("collapsed floor underestimated: %v vs %v", est, ex)
	}
}

func TestDeltaCoversNewObservations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cum := New(DefaultAlpha)
	for i := 0; i < 5000; i++ {
		cum.Record(1000 + rng.Float64()*1e5)
	}
	prev := cum.Clone()
	var batch []float64
	for i := 0; i < 5000; i++ {
		v := 1e6 + rng.Float64()*1e7 // distinguishably slower second batch
		batch = append(batch, v)
		cum.Record(v)
	}
	d := Delta(cum, prev)
	if d.Count() != uint64(len(batch)) {
		t.Fatalf("delta count %d != batch %d", d.Count(), len(batch))
	}
	sort.Float64s(batch)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		// Bucket counts difference exactly; min/max degrade to bucket
		// edges, so allow 2α.
		est, ex := d.Quantile(q), exactQuantile(batch, q)
		if rel := math.Abs(est-ex) / ex; rel > 2*DefaultAlpha {
			t.Errorf("delta q%.2f: %v vs %v (rel %.4f)", q, est, ex, rel)
		}
	}
	// Delta against nil or empty is a clone of the cumulative sketch.
	if got := Delta(cum, nil); got.Count() != cum.Count() {
		t.Errorf("nil-prev delta count %d != %d", got.Count(), cum.Count())
	}
}

func TestResetAndCopy(t *testing.T) {
	s := New(DefaultAlpha)
	s.Record(100)
	c := s.Clone()
	s.Reset()
	if s.Count() != 0 || s.Alpha() != DefaultAlpha {
		t.Fatalf("reset: count=%d alpha=%v", s.Count(), s.Alpha())
	}
	if c.Count() != 1 {
		t.Fatalf("clone shares state with reset original")
	}
	s.CopyFrom(c)
	if s.Count() != 1 || s.Quantile(0.5) != 100 {
		t.Fatalf("CopyFrom: %+v", s)
	}
	c.Record(1e9)
	if s.Count() != 1 {
		t.Fatal("CopyFrom left the copies aliased")
	}
}

func TestDegenerateInputs(t *testing.T) {
	s := New(DefaultAlpha)
	if s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	s.Record(math.NaN()) // dropped
	s.Record(-5)         // clamps to 0
	s.Record(0.5)        // zero bucket
	if s.Count() != 2 || s.zero != 2 {
		t.Fatalf("count=%d zero=%d", s.Count(), s.zero)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Fatalf("all-sub-1 median %v", q)
	}
	if New(math.NaN()).Alpha() != DefaultAlpha || New(-1).Alpha() != DefaultAlpha {
		t.Fatal("invalid alpha must fall back to the default")
	}
}

// TestRecordZeroAlloc pins the hot-path contract: Record never touches
// the heap, collapse shifts included.
func TestRecordZeroAlloc(t *testing.T) {
	s := New(DefaultAlpha)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = math.Pow(10, rng.Float64()*12)
	}
	i := 0
	allocs := testing.AllocsPerRun(10000, func() {
		s.Record(vals[i&4095])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per op; want 0", allocs)
	}
}

func BenchmarkRecord(b *testing.B) {
	s := New(DefaultAlpha)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Record(float64(1000 + i%100000))
	}
}

func BenchmarkMerge(b *testing.B) {
	a, c := New(DefaultAlpha), New(DefaultAlpha)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		c.Record(math.Exp(rng.NormFloat64()*2 + 8))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Reset()
		_ = a.Merge(c)
	}
}

// TestBucketsCumulative pins the Prometheus-facing iterator: ascending
// upper bounds, strictly increasing cumulative counts ending at Count,
// zero bucket reported with upper bound 1, and every recorded value at
// or below the last bound it was counted under.
func TestBucketsCumulative(t *testing.T) {
	s := New(DefaultAlpha)
	s.RecordN(0.5, 3) // zero bucket
	vals := []float64{2, 40, 40, 1e6, 3e9}
	for _, v := range vals {
		s.Record(v)
	}
	var uppers []float64
	var cums []uint64
	s.Buckets(func(upper float64, cum uint64) {
		uppers = append(uppers, upper)
		cums = append(cums, cum)
	})
	if len(uppers) == 0 {
		t.Fatal("no buckets emitted")
	}
	if uppers[0] != 1 || cums[0] != 3 {
		t.Fatalf("zero bucket = (%g, %d), want (1, 3)", uppers[0], cums[0])
	}
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			t.Fatalf("upper bounds not ascending: %v", uppers)
		}
		if cums[i] <= cums[i-1] {
			t.Fatalf("cumulative counts not increasing: %v", cums)
		}
	}
	if got := cums[len(cums)-1]; got != s.Count() {
		t.Fatalf("last cum = %d, want Count %d", got, s.Count())
	}
	// γ^k is bucket k's inclusive upper edge: each value must be counted
	// by the first bound >= it.
	for _, v := range vals {
		for i, u := range uppers {
			if v <= u {
				lo := uint64(0)
				if i > 0 {
					lo = cums[i-1]
				}
				if cums[i] == lo {
					t.Fatalf("value %g not counted under bound %g", v, u)
				}
				break
			}
		}
	}
	// Empty sketch: no callbacks.
	calls := 0
	New(DefaultAlpha).Buckets(func(float64, uint64) { calls++ })
	if calls != 0 {
		t.Fatalf("empty sketch emitted %d buckets", calls)
	}
}
