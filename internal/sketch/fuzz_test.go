package sketch

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeSketch drives hostile bytes through the sketch decoder, the
// same contract the digest and tuple codec fuzzers enforce: never panic,
// never report more bytes consumed than given, and any buffer that
// decodes must re-encode canonically — encode(decode(b)) is a fixed
// point of decode∘encode.
func FuzzDecodeSketch(f *testing.F) {
	f.Add(AppendSketch(nil, New(DefaultAlpha))) // empty sketch
	pop := New(DefaultAlpha)
	for i := 1; i <= 200; i++ {
		pop.Record(float64(i) * 1500)
	}
	pop.Record(0.5) // zero bucket occupied
	f.Add(AppendSketch(nil, pop))
	nan := New(0.02)
	nan.Record(1e6)
	nan.sum = math.Float64frombits(0x7ff8_dead_beef_0001) // NaN payload
	f.Add(AppendSketch(nil, nan))
	f.Add([]byte{})
	f.Add([]byte{0x3f, 0x84, 0x7a, 0xe1, 0x47, 0xae, 0x14, 0x7b, 0xff, 0xff}) // alpha then junk

	f.Fuzz(func(t *testing.T, data []byte) {
		s, n, err := DecodeSketch(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if s.Count() < s.zero {
			t.Fatalf("count %d below zero-bucket %d", s.Count(), s.zero)
		}
		// Quantile queries on anything that decodes must be total.
		for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2, math.NaN()} {
			_ = s.Quantile(q)
		}
		enc := AppendSketch(nil, s)
		s2, n2, err := DecodeSketch(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("canonical encoding has %d trailing bytes", len(enc)-n2)
		}
		if s2.Count() != s.Count() || s2.zero != s.zero ||
			math.Float64bits(s2.sum) != math.Float64bits(s.sum) ||
			math.Float64bits(s2.minV) != math.Float64bits(s.minV) ||
			math.Float64bits(s2.maxV) != math.Float64bits(s.maxV) {
			t.Fatalf("round trip changed header: %+v vs %+v", s2, s)
		}
		if !bytes.Equal(AppendSketch(nil, s2), enc) {
			t.Fatal("encoding is not a fixed point of decode∘encode")
		}
	})
}
