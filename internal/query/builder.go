package query

import (
	"fmt"

	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/stream"
)

// Builder assembles and validates a Network. All methods record the first
// error and make Build return it, so call sites can chain without checking
// every step (the box-and-arrow GUI equivalent, §2.2).
type Builder struct {
	name    string
	boxes   []*Box
	arcs    []Arc
	inputs  map[string]*Input
	outputs map[string]*Output
	err     error
}

// NewBuilder starts an empty network description.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		inputs:  map[string]*Input{},
		outputs: map[string]*Output{},
	}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return b
}

// AddBox adds an operator box with the given id.
func (b *Builder) AddBox(id string, spec op.Spec) *Builder {
	if id == "" {
		return b.fail("builder: empty box id")
	}
	for _, box := range b.boxes {
		if box.ID == id {
			return b.fail("builder: duplicate box id %q", id)
		}
	}
	b.boxes = append(b.boxes, &Box{ID: id, Spec: spec})
	return b
}

// RemoveBox deletes a box and every arc and binding touching it. It is
// used by network rewrites (e.g. replacing a box with its split form).
func (b *Builder) RemoveBox(id string) *Builder {
	kept := b.boxes[:0]
	found := false
	for _, box := range b.boxes {
		if box.ID == id {
			found = true
			continue
		}
		kept = append(kept, box)
	}
	if !found {
		return b.fail("builder: RemoveBox: no box %q", id)
	}
	b.boxes = kept
	arcs := b.arcs[:0]
	for _, a := range b.arcs {
		if a.From.Box != id && a.To.Box != id {
			arcs = append(arcs, a)
		}
	}
	b.arcs = arcs
	for _, in := range b.inputs {
		dests := in.Dests[:0]
		for _, d := range in.Dests {
			if d.Box != id {
				dests = append(dests, d)
			}
		}
		in.Dests = dests
	}
	for name, o := range b.outputs {
		if o.Src.Box == id {
			delete(b.outputs, name)
		}
	}
	return b
}

// SetSpec replaces a box's operator spec, keeping its wiring. Used by the
// re-optimizer when two adjacent commuting boxes exchange roles.
func (b *Builder) SetSpec(id string, spec op.Spec) *Builder {
	for _, box := range b.boxes {
		if box.ID == id {
			box.Spec = spec
			return b
		}
	}
	return b.fail("builder: SetSpec: no box %q", id)
}

// RemoveArc deletes the first arc matching from -> to.
func (b *Builder) RemoveArc(from, to Port) *Builder {
	for i, a := range b.arcs {
		if a.From == from && a.To == to {
			b.arcs = append(b.arcs[:i], b.arcs[i+1:]...)
			return b
		}
	}
	return b.fail("builder: RemoveArc: no arc %v -> %v", from, to)
}

// UnbindInputDest removes one destination of a named input binding.
func (b *Builder) UnbindInputDest(name string, dest Port) *Builder {
	in, ok := b.inputs[name]
	if !ok {
		return b.fail("builder: UnbindInputDest: no input %q", name)
	}
	for i, d := range in.Dests {
		if d == dest {
			in.Dests = append(in.Dests[:i], in.Dests[i+1:]...)
			return b
		}
	}
	return b.fail("builder: UnbindInputDest: input %q has no dest %v", name, dest)
}

// Connect adds an arc from box out port 0 to box in port 0 — the common
// linear-chain case.
func (b *Builder) Connect(from, to string) *Builder {
	return b.ConnectPorts(Port{Box: from}, Port{Box: to}, false)
}

// ConnectPorts adds an arc between explicit ports, optionally marking it
// as a connection point (§2.2).
func (b *Builder) ConnectPorts(from, to Port, connectionPoint bool) *Builder {
	b.arcs = append(b.arcs, Arc{From: from, To: to, ConnectionPoint: connectionPoint})
	return b
}

// BindInput attaches a named input stream with its schema to a box input
// port. Binding the same name again adds another destination (fan-out of
// an input stream) and must carry a compatible schema.
func (b *Builder) BindInput(name string, schema *stream.Schema, box string, port int) *Builder {
	if schema == nil {
		return b.fail("builder: input %q has nil schema", name)
	}
	in, ok := b.inputs[name]
	if !ok {
		in = &Input{Name: name, Schema: schema}
		b.inputs[name] = in
	} else if !in.Schema.Compatible(schema) {
		return b.fail("builder: input %q rebound with incompatible schema", name)
	}
	in.Dests = append(in.Dests, Port{Box: box, Port: port})
	return b
}

// BindOutput attaches a box output port to a named application output,
// optionally with a QoS specification.
func (b *Builder) BindOutput(name string, box string, port int, spec *qos.Spec) *Builder {
	if _, dup := b.outputs[name]; dup {
		return b.fail("builder: duplicate output %q", name)
	}
	b.outputs[name] = &Output{Name: name, Src: Port{Box: box, Port: port}, QoS: spec}
	return b
}

// Chain is a convenience that adds boxes in sequence connected
// port-0-to-port-0, returning the builder.
func (b *Builder) Chain(ids []string, specs []op.Spec) *Builder {
	if len(ids) != len(specs) {
		return b.fail("builder: Chain wants equal ids and specs")
	}
	for i := range ids {
		b.AddBox(ids[i], specs[i])
		if i > 0 {
			b.Connect(ids[i-1], ids[i])
		}
	}
	return b
}

// Build validates the description and returns an immutable Network:
// every arc references existing boxes and in-range ports, every box input
// port has exactly one source, the graph is loop-free, and operator
// parameters bind against the propagated schemas.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Network{
		name:       b.name,
		boxes:      make(map[string]*Box, len(b.boxes)),
		arcs:       append([]Arc(nil), b.arcs...),
		inputs:     b.inputs,
		outputs:    b.outputs,
		arcSchemas: map[Port]*stream.Schema{},
		inSchemas:  map[string][]*stream.Schema{},
	}
	for _, box := range b.boxes {
		n.boxes[box.ID] = box
	}
	if err := n.validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustBuild is Build that panics on error; for compiled-in networks.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
