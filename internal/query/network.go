// Package query models Aurora query networks (§2.2): loop-free directed
// graphs of operator boxes connected by arcs, with named input and output
// stream bindings, QoS specifications at the outputs, and connection
// points — predetermined arcs where history is stored and where network
// transformations are permitted (§5.1 stabilization happens at connection
// points).
//
// A Network is a description: it holds operator Specs, not live operator
// instances. The engine instantiates operators at deployment time, and the
// load manager rewrites Networks (box sliding and splitting) by
// manipulating this description, which is what makes the transformations
// shippable across nodes and participants.
package query

import (
	"fmt"

	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/stream"
)

// Port addresses one port of one box.
type Port struct {
	Box  string `json:"box"`
	Port int    `json:"port"`
}

// String renders the port as box:port.
func (p Port) String() string { return fmt.Sprintf("%s:%d", p.Box, p.Port) }

// Box is one operator node of the network.
type Box struct {
	ID   string  `json:"id"`
	Spec op.Spec `json:"spec"`
}

// Arc is a directed edge between two box ports. ConnectionPoint marks the
// predetermined arcs of §2.2 where historical data is stored and where
// load-sharing transformations stabilize the network.
type Arc struct {
	From            Port `json:"from"`
	To              Port `json:"to"`
	ConnectionPoint bool `json:"connection_point,omitempty"`
}

// Input binds a named input stream (with its registered schema) to one or
// more box input ports.
type Input struct {
	Name   string         `json:"name"`
	Schema *stream.Schema `json:"-"`
	Dests  []Port         `json:"dests"`
}

// Output binds a box output port to a named output stream delivered to an
// application, optionally with the application's QoS specification (§7.1).
type Output struct {
	Name string    `json:"name"`
	Src  Port      `json:"src"`
	QoS  *qos.Spec `json:"-"`
}

// Network is a validated query network. Construct with Builder; a built
// network's structure is immutable (rewrites produce new networks via
// Rewrite), so deployments can share it safely.
type Network struct {
	name    string
	boxes   map[string]*Box
	arcs    []Arc
	inputs  map[string]*Input
	outputs map[string]*Output

	topo       []string                    // box ids in topological order
	arcSchemas map[Port]*stream.Schema     // schema on each box output port
	inSchemas  map[string][]*stream.Schema // resolved input schemas per box
}

// Name returns the network's name.
func (n *Network) Name() string { return n.name }

// Box returns the box with the given id, or nil.
func (n *Network) Box(id string) *Box { return n.boxes[id] }

// Boxes returns the box ids in topological order.
func (n *Network) Boxes() []string { return append([]string(nil), n.topo...) }

// NumBoxes returns the number of boxes.
func (n *Network) NumBoxes() int { return len(n.boxes) }

// Arcs returns a copy of all arcs.
func (n *Network) Arcs() []Arc { return append([]Arc(nil), n.arcs...) }

// Inputs returns the input bindings keyed by stream name.
func (n *Network) Inputs() map[string]*Input {
	out := make(map[string]*Input, len(n.inputs))
	for k, v := range n.inputs {
		out[k] = v
	}
	return out
}

// Outputs returns the output bindings keyed by stream name.
func (n *Network) Outputs() map[string]*Output {
	out := make(map[string]*Output, len(n.outputs))
	for k, v := range n.outputs {
		out[k] = v
	}
	return out
}

// OutputSchema returns the schema on a box's output port, available after
// validation.
func (n *Network) OutputSchema(p Port) *stream.Schema { return n.arcSchemas[p] }

// InputSchemas returns the resolved input schemas of a box.
func (n *Network) InputSchemas(boxID string) []*stream.Schema { return n.inSchemas[boxID] }

// Downstream returns the arcs leaving any output port of the box.
func (n *Network) Downstream(boxID string) []Arc {
	var out []Arc
	for _, a := range n.arcs {
		if a.From.Box == boxID {
			out = append(out, a)
		}
	}
	return out
}

// Upstream returns the arcs entering any input port of the box.
func (n *Network) Upstream(boxID string) []Arc {
	var out []Arc
	for _, a := range n.arcs {
		if a.To.Box == boxID {
			out = append(out, a)
		}
	}
	return out
}

// InputsOf returns the input bindings that feed the box directly.
func (n *Network) InputsOf(boxID string) []*Input {
	var out []*Input
	for _, in := range n.inputs {
		for _, d := range in.Dests {
			if d.Box == boxID {
				out = append(out, in)
				break
			}
		}
	}
	return out
}

// OutputsOf returns the output bindings fed by the box directly.
func (n *Network) OutputsOf(boxID string) []*Output {
	var out []*Output
	for _, o := range n.outputs {
		if o.Src.Box == boxID {
			out = append(out, o)
		}
	}
	return out
}

// Rewrite returns a Builder pre-loaded with this network's contents, the
// mutation entry point for box sliding and splitting (§5.1).
func (n *Network) Rewrite() *Builder {
	b := NewBuilder(n.name)
	for _, id := range n.topo {
		b.AddBox(id, n.boxes[id].Spec.Clone())
	}
	for _, a := range n.arcs {
		b.ConnectPorts(a.From, a.To, a.ConnectionPoint)
	}
	for _, in := range n.inputs {
		for _, d := range in.Dests {
			b.BindInput(in.Name, in.Schema, d.Box, d.Port)
		}
	}
	for _, o := range n.outputs {
		b.BindOutput(o.Name, o.Src.Box, o.Src.Port, o.QoS)
	}
	return b
}

// String renders a short structural summary.
func (n *Network) String() string {
	return fmt.Sprintf("network %s: %d boxes, %d arcs, %d inputs, %d outputs",
		n.name, len(n.boxes), len(n.arcs), len(n.inputs), len(n.outputs))
}
