package query

import (
	"testing"

	"repro/internal/op"
)

func unionSpec(n int) op.Spec {
	return op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}
}

// unionThenFilter builds: in1, in2 -> union -> filter -> out.
func unionThenFilter(t *testing.T) *Network {
	t.Helper()
	return NewBuilder("uf").
		AddBox("u", unionSpec(2)).
		AddBox("f", filterSpec("B < 3")).
		Connect("u", "f").
		BindInput("in1", tSchema, "u", 0).
		BindInput("in2", tSchema, "u", 1).
		BindOutput("out", "f", 0, nil).
		MustBuild()
}

func TestOptimizePushesFilterThroughUnion(t *testing.T) {
	n := unionThenFilter(t)
	opt, stats, err := Optimize(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FiltersPushed != 1 || !stats.Changed() {
		t.Fatalf("stats = %+v", stats)
	}
	// The original filter is gone; two copies sit above the union; the
	// output now binds to the union.
	if opt.Box("f") != nil {
		t.Error("pushed filter should be removed")
	}
	copies := 0
	for _, id := range opt.Boxes() {
		if opt.Box(id).Spec.Kind == "filter" {
			copies++
			if len(opt.Downstream(id)) != 1 || opt.Downstream(id)[0].To.Box != "u" {
				t.Errorf("filter copy %s must feed the union", id)
			}
		}
	}
	if copies != 2 {
		t.Fatalf("filter copies = %d, want 2", copies)
	}
	if opt.Outputs()["out"].Src.Box != "u" {
		t.Error("output must move to the union")
	}
}

func TestOptimizePushdownPreservesResults(t *testing.T) {
	// Semantic check via engine execution lives in the engine tests; at
	// the query level we verify structural invariants: both networks
	// validate and expose the same inputs/outputs.
	n := unionThenFilter(t)
	opt, _, err := Optimize(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Inputs()) != 2 || len(opt.Outputs()) != 1 {
		t.Fatalf("interface changed: %s", opt)
	}
}

func TestOptimizeSkipsSharedUnion(t *testing.T) {
	// The union also feeds a second consumer: pushdown must not fire.
	n := NewBuilder("shared").
		AddBox("u", unionSpec(2)).
		AddBox("f", filterSpec("B < 3")).
		AddBox("other", filterSpec("true")).
		Connect("u", "f").
		Connect("u", "other").
		BindInput("in1", tSchema, "u", 0).
		BindInput("in2", tSchema, "u", 1).
		BindOutput("out", "f", 0, nil).
		BindOutput("out2", "other", 0, nil).
		MustBuild()
	_, stats, err := Optimize(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FiltersPushed != 0 {
		t.Error("pushdown through a shared union changes other consumers")
	}
}

func TestOptimizeSkipsDualFilter(t *testing.T) {
	n := NewBuilder("dual").
		AddBox("u", unionSpec(2)).
		AddBox("f", op.Spec{Kind: "filter", Params: map[string]string{
			"predicate": "B < 3", "falseport": "true"}}).
		Connect("u", "f").
		BindInput("in1", tSchema, "u", 0).
		BindInput("in2", tSchema, "u", 1).
		BindOutput("pass", "f", 0, nil).
		BindOutput("fail", "f", 1, nil).
		MustBuild()
	_, stats, err := Optimize(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Changed() {
		t.Error("dual-output filters must not be pushed")
	}
}

func TestOptimizeReordersFiltersBySelectivity(t *testing.T) {
	n := NewBuilder("chain").
		AddBox("cheap", filterSpec("B < 90")). // selectivity 0.9
		AddBox("sharp", filterSpec("B < 10")). // selectivity 0.1
		Connect("cheap", "sharp").
		BindInput("in", tSchema, "cheap", 0).
		BindOutput("out", "sharp", 0, nil).
		MustBuild()
	sel := Selectivity{"cheap": 0.9, "sharp": 0.1}
	opt, stats, err := Optimize(n, sel)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FiltersReordered != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The sharp predicate now runs in the first position.
	if got := opt.Box("cheap").Spec.Params["predicate"]; got != "B < 10" {
		t.Errorf("first box predicate = %q", got)
	}
	if got := opt.Box("sharp").Spec.Params["predicate"]; got != "B < 90" {
		t.Errorf("second box predicate = %q", got)
	}
	// Idempotent: a second pass finds nothing to do.
	_, stats2, err := Optimize(opt, sel)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Changed() {
		t.Errorf("second pass changed again: %+v (oscillation)", stats2)
	}
}

func TestOptimizeReorderNeedsEstimates(t *testing.T) {
	n := NewBuilder("chain").
		AddBox("a", filterSpec("B < 90")).
		AddBox("b", filterSpec("B < 10")).
		Connect("a", "b").
		BindInput("in", tSchema, "a", 0).
		BindOutput("out", "b", 0, nil).
		MustBuild()
	_, stats, err := Optimize(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FiltersReordered != 0 {
		t.Error("no estimates -> no reorder")
	}
	// Near-equal selectivities stay put (margin against thrash).
	_, stats, err = Optimize(n, Selectivity{"a": 0.5, "b": 0.48})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FiltersReordered != 0 {
		t.Error("within-margin estimates must not reorder")
	}
}

func TestOptimizeComposes(t *testing.T) {
	// union -> f1 -> f2: push f1 through, then f2 through the union too?
	// f2's upstream after the push is the union (single consumer chain
	// collapsed), so both eventually sit above the union.
	n := NewBuilder("deep").
		AddBox("u", unionSpec(2)).
		AddBox("f1", filterSpec("B < 90")).
		AddBox("f2", filterSpec("B < 10")).
		Connect("u", "f1").
		Connect("f1", "f2").
		BindInput("in1", tSchema, "u", 0).
		BindInput("in2", tSchema, "u", 1).
		BindOutput("out", "f2", 0, nil).
		MustBuild()
	opt, stats, err := Optimize(n, Selectivity{"f1": 0.9, "f2": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FiltersPushed < 2 {
		t.Errorf("both filters should push through: %+v", stats)
	}
	if opt.Outputs()["out"].Src.Box != "u" {
		t.Error("union should be the terminal box")
	}
}

func TestBuilderRewriteHelpers(t *testing.T) {
	b := unionThenFilter(t).Rewrite()
	if _, err := b.SetSpec("ghost", filterSpec("true")).Build(); err == nil {
		t.Error("SetSpec on unknown box should fail")
	}
	b2 := unionThenFilter(t).Rewrite()
	if _, err := b2.RemoveArc(Port{Box: "x"}, Port{Box: "y"}).Build(); err == nil {
		t.Error("RemoveArc on missing arc should fail")
	}
	b3 := unionThenFilter(t).Rewrite()
	if _, err := b3.UnbindInputDest("nope", Port{}).Build(); err == nil {
		t.Error("UnbindInputDest on unknown input should fail")
	}
	b4 := unionThenFilter(t).Rewrite()
	if _, err := b4.UnbindInputDest("in1", Port{Box: "ghost"}).Build(); err == nil {
		t.Error("UnbindInputDest on unknown dest should fail")
	}
}
