package query

import (
	"fmt"
	"sort"

	"repro/internal/op"
	"repro/internal/stream"
)

// validate checks structure, topologically orders the boxes, and binds
// operator parameters against propagated schemas.
func (n *Network) validate() error {
	// Instantiate a throw-away operator per box to learn arities and to
	// surface parameter errors early.
	insts := make(map[string]op.Operator, len(n.boxes))
	for id, box := range n.boxes {
		inst, err := op.Build(box.Spec)
		if err != nil {
			return fmt.Errorf("box %q: %w", id, err)
		}
		insts[id] = inst
	}

	// Structural checks: arcs reference real ports; every input port has
	// exactly one source.
	sources := map[Port]int{} // box input port -> number of feeders
	for _, a := range n.arcs {
		from, ok := insts[a.From.Box]
		if !ok {
			return fmt.Errorf("arc %v -> %v: unknown source box", a.From, a.To)
		}
		to, ok := insts[a.To.Box]
		if !ok {
			return fmt.Errorf("arc %v -> %v: unknown destination box", a.From, a.To)
		}
		if a.From.Port < 0 || a.From.Port >= from.NumOut() {
			return fmt.Errorf("arc %v -> %v: source port out of range", a.From, a.To)
		}
		if a.To.Port < 0 || a.To.Port >= to.NumIn() {
			return fmt.Errorf("arc %v -> %v: destination port out of range", a.From, a.To)
		}
		sources[a.To]++
	}
	for _, in := range n.inputs {
		for _, d := range in.Dests {
			inst, ok := insts[d.Box]
			if !ok {
				return fmt.Errorf("input %q: unknown box %q", in.Name, d.Box)
			}
			if d.Port < 0 || d.Port >= inst.NumIn() {
				return fmt.Errorf("input %q: port %v out of range", in.Name, d)
			}
			sources[d]++
		}
	}
	for id, inst := range insts {
		for p := 0; p < inst.NumIn(); p++ {
			switch c := sources[Port{Box: id, Port: p}]; {
			case c == 0:
				return fmt.Errorf("box %q input port %d has no source", id, p)
			case c > 1:
				return fmt.Errorf("box %q input port %d has %d sources; want exactly 1", id, p, c)
			}
		}
	}
	for name, o := range n.outputs {
		inst, ok := insts[o.Src.Box]
		if !ok {
			return fmt.Errorf("output %q: unknown box %q", name, o.Src.Box)
		}
		if o.Src.Port < 0 || o.Src.Port >= inst.NumOut() {
			return fmt.Errorf("output %q: port %v out of range", name, o.Src)
		}
		if o.QoS != nil {
			if err := o.QoS.Validate(); err != nil {
				return fmt.Errorf("output %q: %w", name, err)
			}
		}
	}

	// Kahn topological sort: queries are loop-free directed graphs (§2.1).
	indeg := map[string]int{}
	succ := map[string][]string{}
	for id := range n.boxes {
		indeg[id] = 0
	}
	for _, a := range n.arcs {
		indeg[a.To.Box]++
		succ[a.From.Box] = append(succ[a.From.Box], a.To.Box)
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready) // deterministic order for reproducible deployments
	var topo []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		topo = append(topo, id)
		var next []string
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Strings(next)
		ready = append(ready, next...)
	}
	if len(topo) != len(n.boxes) {
		return fmt.Errorf("network %q contains a cycle; queries must be loop-free", n.name)
	}
	n.topo = topo

	// Propagate schemas in topological order and bind each operator.
	feeder := map[Port]*stream.Schema{} // box input port -> schema
	for _, in := range n.inputs {
		for _, d := range in.Dests {
			feeder[d] = in.Schema
		}
	}
	for _, id := range topo {
		inst := insts[id]
		ins := make([]*stream.Schema, inst.NumIn())
		for p := range ins {
			s := feeder[Port{Box: id, Port: p}]
			if s == nil {
				return fmt.Errorf("box %q input port %d: schema not resolved", id, p)
			}
			ins[p] = s
		}
		outs, err := inst.Bind(ins)
		if err != nil {
			return fmt.Errorf("box %q: %w", id, err)
		}
		n.inSchemas[id] = ins
		for p, s := range outs {
			n.arcSchemas[Port{Box: id, Port: p}] = s
		}
		for _, a := range n.arcs {
			if a.From.Box == id {
				feeder[a.To] = outs[a.From.Port]
			}
		}
	}
	return nil
}
