package query

import (
	"fmt"

	"repro/internal/op"
)

// This file implements the network re-optimization tactic of §2.3: "when
// load shedding is not working, Aurora will try to re-optimize the network
// using standard query optimization techniques (such as those that rely on
// operator commutativities) ... in transforming the original network, it
// might uncover new opportunities for load shedding."
//
// Two classical, stream-safe rewrites are provided:
//
//   - Filter/Union commutation (filter pushdown): a Filter consuming a
//     Union's output moves above the Union, one copy per input branch.
//     This shrinks the Union's input volume and, in a distributed
//     deployment, moves the selective work toward the sources — the same
//     win box sliding buys by placement (Fig 4), obtained structurally.
//
//   - Filter reordering: adjacent Filters commute; running the more
//     selective one first minimizes the expected per-tuple work.
//
// Both rewrites preserve per-branch tuple order and exact results (Filter
// is stateless and deterministic), so they are safe for continuous
// queries, unlike relational rewrites that reorder stateful windows.

// OptimizeStats reports what an optimization pass changed.
type OptimizeStats struct {
	FiltersPushed    int // filter-through-union pushdowns applied
	FiltersReordered int // adjacent filter swaps applied
}

// Changed reports whether any rewrite fired.
func (s OptimizeStats) Changed() bool { return s.FiltersPushed+s.FiltersReordered > 0 }

// Selectivity estimates per box id feed the reorder decision; boxes
// without an entry are assumed selectivity 1 (never profitable to hoist).
type Selectivity map[string]float64

// Optimize applies the rewrites to a fixed point (bounded by the network
// size) and returns the optimized network. The input network is not
// modified. Selectivity estimates come from the running system's
// monitored statistics (§7.1); pass nil to apply only structural
// pushdowns.
func Optimize(n *Network, sel Selectivity) (*Network, OptimizeStats, error) {
	var stats OptimizeStats
	cur := n
	for pass := 0; pass <= len(n.boxes)+1; pass++ {
		next, changed, err := pushOneFilter(cur)
		if err != nil {
			return nil, stats, err
		}
		if changed {
			stats.FiltersPushed++
			cur = next
			continue
		}
		next, changed, err = reorderOneFilterPair(cur, sel)
		if err != nil {
			return nil, stats, err
		}
		if changed {
			stats.FiltersReordered++
			cur = next
			continue
		}
		return cur, stats, nil
	}
	return cur, stats, nil
}

// isPlainFilter reports whether the box is a single-output Filter.
func isPlainFilter(b *Box) bool {
	return b != nil && b.Spec.Kind == op.KindFilter && b.Spec.Params["falseport"] != "true"
}

// pushOneFilter finds a Filter whose single input is a Union output and
// commutes them: union(a, b) |> filter  ==>  union(filter(a), filter(b)).
func pushOneFilter(n *Network) (*Network, bool, error) {
	for _, id := range n.Boxes() {
		f := n.Box(id)
		if !isPlainFilter(f) {
			continue
		}
		ups := n.Upstream(id)
		if len(ups) != 1 {
			continue // fed by an application input, not an arc
		}
		u := n.Box(ups[0].From.Box)
		if u == nil || u.Spec.Kind != op.KindUnion {
			continue
		}
		// The Union's output must feed only this filter, or the pushdown
		// would change what the other consumers see.
		consumers := 0
		for _, a := range n.Downstream(u.ID) {
			if a.From == ups[0].From {
				consumers++
			}
		}
		for _, o := range n.Outputs() {
			if o.Src == ups[0].From {
				consumers++
			}
		}
		if consumers != 1 {
			continue
		}

		b := n.Rewrite()
		b.RemoveBox(id)
		// One filter copy per union input branch.
		unionUps := n.Upstream(u.ID)
		unionInputs := n.InputsOf(u.ID)
		copyIdx := 0
		addCopy := func() string {
			cid := fmt.Sprintf("%s.push%d", id, copyIdx)
			copyIdx++
			b.AddBox(cid, f.Spec.Clone())
			return cid
		}
		for _, a := range unionUps {
			cid := addCopy()
			// Rewire: branch -> filter copy -> union port.
			bb := b
			bb.RemoveArc(a.From, a.To)
			bb.ConnectPorts(a.From, Port{Box: cid}, a.ConnectionPoint)
			bb.ConnectPorts(Port{Box: cid}, a.To, false)
		}
		for _, in := range unionInputs {
			for _, d := range in.Dests {
				if d.Box != u.ID {
					continue
				}
				cid := addCopy()
				b.UnbindInputDest(in.Name, d)
				b.BindInput(in.Name, in.Schema, cid, 0)
				b.ConnectPorts(Port{Box: cid}, d, false)
			}
		}
		// The filter's consumers now consume the union directly.
		for _, a := range n.Downstream(id) {
			b.ConnectPorts(ups[0].From, a.To, a.ConnectionPoint)
		}
		for _, o := range n.OutputsOf(id) {
			b.BindOutput(o.Name, u.ID, ups[0].From.Port, o.QoS)
		}
		out, err := b.Build()
		if err != nil {
			return nil, false, fmt.Errorf("query: filter pushdown of %q failed: %w", id, err)
		}
		return out, true, nil
	}
	return n, false, nil
}

// reorderOneFilterPair finds adjacent Filters where the downstream one is
// estimated more selective and swaps them.
func reorderOneFilterPair(n *Network, sel Selectivity) (*Network, bool, error) {
	if sel == nil {
		return n, false, nil
	}
	s := func(id string) float64 {
		if v, ok := sel[id]; ok {
			return v
		}
		return 1
	}
	for _, id := range n.Boxes() {
		first := n.Box(id)
		if !isPlainFilter(first) {
			continue
		}
		downs := n.Downstream(id)
		if len(downs) != 1 || len(n.OutputsOf(id)) != 0 {
			continue
		}
		second := n.Box(downs[0].To.Box)
		if !isPlainFilter(second) {
			continue
		}
		// Only swap a strictly more selective second filter upstream,
		// with a margin to avoid oscillation on noisy estimates.
		if s(second.ID) >= s(first.ID)-0.05 {
			continue
		}
		if len(n.Upstream(second.ID)) != 1 {
			continue
		}
		// Swap specs in place: same topology, exchanged predicates.
		b := n.Rewrite()
		b.SetSpec(first.ID, second.Spec.Clone())
		b.SetSpec(second.ID, first.Spec.Clone())
		out, err := b.Build()
		if err != nil {
			return nil, false, fmt.Errorf("query: filter reorder failed: %w", err)
		}
		// Selectivity bookkeeping follows the predicates.
		sel[first.ID], sel[second.ID] = s(second.ID), s(first.ID)
		return out, true, nil
	}
	return n, false, nil
}
