package query

import (
	"strings"
	"testing"

	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/stream"
)

var tSchema = stream.MustSchema("t",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

func filterSpec(pred string) op.Spec {
	return op.Spec{Kind: "filter", Params: map[string]string{"predicate": pred}}
}

func tumbleSpec() op.Spec {
	return op.Spec{Kind: "tumble", Params: map[string]string{
		"agg": "cnt", "on": "B", "groupby": "A",
	}}
}

func buildChain(t *testing.T) *Network {
	t.Helper()
	n, err := NewBuilder("chain").
		AddBox("f", filterSpec("B < 100")).
		AddBox("tb", tumbleSpec()).
		Connect("f", "tb").
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "tb", 0, &qos.Spec{Latency: qos.DefaultLatency(10, 20)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildValidChain(t *testing.T) {
	n := buildChain(t)
	if n.NumBoxes() != 2 {
		t.Fatalf("boxes = %d", n.NumBoxes())
	}
	topo := n.Boxes()
	if topo[0] != "f" || topo[1] != "tb" {
		t.Errorf("topo = %v", topo)
	}
	// Filter preserves the input schema; tumble emits (A, result).
	fOut := n.OutputSchema(Port{Box: "f", Port: 0})
	if !fOut.Compatible(tSchema) {
		t.Errorf("filter schema = %s", fOut)
	}
	tbOut := n.OutputSchema(Port{Box: "tb", Port: 0})
	if tbOut.Arity() != 2 || tbOut.Index("result") != 1 {
		t.Errorf("tumble schema = %s", tbOut)
	}
	ins := n.InputSchemas("tb")
	if len(ins) != 1 || !ins[0].Compatible(tSchema) {
		t.Error("tumble input schema should be the filter output")
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	// in -> union port 0; filter feeds union port 1; union feeds filter:
	// a genuine cycle with every input port singly fed.
	_, err := NewBuilder("cyc").
		AddBox("u", op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}).
		AddBox("f", filterSpec("true")).
		ConnectPorts(Port{Box: "u", Port: 0}, Port{Box: "f", Port: 0}, false).
		ConnectPorts(Port{Box: "f", Port: 0}, Port{Box: "u", Port: 1}, false).
		BindInput("in", tSchema, "u", 0).
		Build()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle should be rejected, got %v", err)
	}
}

func TestBuildRejectsStructuralErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Network, error)
	}{
		{"unknown source box", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("true")).
				Connect("ghost", "a").BindInput("in", tSchema, "a", 0).Build()
		}},
		{"unknown dest box", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("true")).
				Connect("a", "ghost").BindInput("in", tSchema, "a", 0).Build()
		}},
		{"unfed input port", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("true")).Build()
		}},
		{"doubly fed input port", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("true")).
				BindInput("in1", tSchema, "a", 0).
				BindInput("in2", tSchema, "a", 0).Build()
		}},
		{"source port out of range", func() (*Network, error) {
			return NewBuilder("x").
				AddBox("a", filterSpec("true")).AddBox("b", filterSpec("true")).
				ConnectPorts(Port{Box: "a", Port: 5}, Port{Box: "b"}, false).
				BindInput("in", tSchema, "a", 0).Build()
		}},
		{"dest port out of range", func() (*Network, error) {
			return NewBuilder("x").
				AddBox("a", filterSpec("true")).AddBox("b", filterSpec("true")).
				ConnectPorts(Port{Box: "a"}, Port{Box: "b", Port: 5}, false).
				BindInput("in", tSchema, "a", 0).Build()
		}},
		{"bad operator params", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", op.Spec{Kind: "filter"}).
				BindInput("in", tSchema, "a", 0).Build()
		}},
		{"unknown operator kind", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", op.Spec{Kind: "warp"}).
				BindInput("in", tSchema, "a", 0).Build()
		}},
		{"unbindable predicate", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("ghost < 1")).
				BindInput("in", tSchema, "a", 0).Build()
		}},
		{"output from unknown box", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("true")).
				BindInput("in", tSchema, "a", 0).
				BindOutput("o", "ghost", 0, nil).Build()
		}},
		{"output port out of range", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("true")).
				BindInput("in", tSchema, "a", 0).
				BindOutput("o", "a", 3, nil).Build()
		}},
		{"invalid qos", func() (*Network, error) {
			bad := &qos.Spec{Latency: qos.MustGraph(qos.Point{X: 0, U: 0}, qos.Point{X: 1, U: 1})}
			return NewBuilder("x").AddBox("a", filterSpec("true")).
				BindInput("in", tSchema, "a", 0).
				BindOutput("o", "a", 0, bad).Build()
		}},
		{"input to unknown box", func() (*Network, error) {
			return NewBuilder("x").AddBox("a", filterSpec("true")).
				BindInput("in", tSchema, "a", 0).
				BindInput("in2", tSchema, "ghost", 0).Build()
		}},
	}
	for _, c := range cases {
		if _, err := c.build(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestBuilderErrorsSticky(t *testing.T) {
	b := NewBuilder("x").AddBox("", filterSpec("true"))
	b.AddBox("ok", filterSpec("true")).BindInput("in", tSchema, "ok", 0)
	if _, err := b.Build(); err == nil {
		t.Error("first error should stick")
	}
	if _, err := NewBuilder("x").AddBox("a", filterSpec("true")).AddBox("a", filterSpec("true")).Build(); err == nil {
		t.Error("duplicate box ids should fail")
	}
	if _, err := NewBuilder("x").
		AddBox("a", filterSpec("true")).
		BindInput("in", tSchema, "a", 0).
		BindOutput("o", "a", 0, nil).
		BindOutput("o", "a", 0, nil).Build(); err == nil {
		t.Error("duplicate outputs should fail")
	}
	if _, err := NewBuilder("x").AddBox("a", filterSpec("true")).
		BindInput("in", nil, "a", 0).Build(); err == nil {
		t.Error("nil input schema should fail")
	}
}

func TestBuilderChainHelper(t *testing.T) {
	n, err := NewBuilder("c").
		Chain([]string{"f1", "f2", "f3"},
			[]op.Spec{filterSpec("A < 10"), filterSpec("B < 10"), filterSpec("A != B")}).
		BindInput("in", tSchema, "f1", 0).
		BindOutput("out", "f3", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Arcs()) != 2 {
		t.Errorf("arcs = %d", len(n.Arcs()))
	}
	if _, err := NewBuilder("c").Chain([]string{"a"}, nil).Build(); err == nil {
		t.Error("mismatched Chain args should fail")
	}
}

func TestFanOutAndMerge(t *testing.T) {
	// in -> dual filter -> two branches -> union.
	dual := op.Spec{Kind: "filter", Params: map[string]string{
		"predicate": "(B < 3)", "falseport": "true",
	}}
	n, err := NewBuilder("diamond").
		AddBox("router", dual).
		AddBox("u", op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}).
		ConnectPorts(Port{Box: "router", Port: 0}, Port{Box: "u", Port: 0}, false).
		ConnectPorts(Port{Box: "router", Port: 1}, Port{Box: "u", Port: 1}, false).
		BindInput("in", tSchema, "router", 0).
		BindOutput("out", "u", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Boxes(); got[0] != "router" || got[1] != "u" {
		t.Errorf("topo = %v", got)
	}
}

func TestNavigationHelpers(t *testing.T) {
	n := buildChain(t)
	if down := n.Downstream("f"); len(down) != 1 || down[0].To.Box != "tb" {
		t.Errorf("Downstream = %v", down)
	}
	if up := n.Upstream("tb"); len(up) != 1 || up[0].From.Box != "f" {
		t.Errorf("Upstream = %v", up)
	}
	if ins := n.InputsOf("f"); len(ins) != 1 || ins[0].Name != "in" {
		t.Errorf("InputsOf = %v", ins)
	}
	if outs := n.OutputsOf("tb"); len(outs) != 1 || outs[0].Name != "out" {
		t.Errorf("OutputsOf = %v", outs)
	}
	if n.Box("f") == nil || n.Box("ghost") != nil {
		t.Error("Box lookup wrong")
	}
	if !strings.Contains(n.String(), "2 boxes") {
		t.Errorf("String = %q", n.String())
	}
}

func TestRewriteRoundTrip(t *testing.T) {
	n := buildChain(t)
	n2, err := n.Rewrite().Build()
	if err != nil {
		t.Fatal(err)
	}
	if n2.NumBoxes() != n.NumBoxes() || len(n2.Arcs()) != len(n.Arcs()) {
		t.Error("Rewrite should reproduce the structure")
	}
	if n2.Outputs()["out"].QoS == nil {
		t.Error("Rewrite must preserve QoS bindings")
	}
	// Mutating the rewrite must not corrupt the original.
	n3, err := n.Rewrite().RemoveBox("tb").
		BindOutput("out2", "f", 0, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	if n3.NumBoxes() != 1 || n.NumBoxes() != 2 {
		t.Error("rewrite mutation leaked into the original")
	}
}

func TestRemoveBoxCleansBindings(t *testing.T) {
	b := buildChain(t).Rewrite()
	n, err := b.RemoveBox("f").
		BindInput("in2", tSchema, "tb", 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.NumBoxes() != 1 || len(n.Arcs()) != 0 {
		t.Errorf("RemoveBox left structure behind: %s", n)
	}
	// Removing the output box drops the output binding.
	b2 := buildChain(t).Rewrite()
	n2, err := b2.RemoveBox("tb").BindOutput("o2", "f", 0, nil).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(n2.Outputs()) != 1 {
		t.Errorf("outputs = %v", n2.Outputs())
	}
	if _, err := buildChain(t).Rewrite().RemoveBox("ghost").Build(); err == nil {
		t.Error("RemoveBox of unknown id should fail")
	}
}

func TestConnectionPointMarking(t *testing.T) {
	n, err := NewBuilder("cp").
		AddBox("a", filterSpec("true")).
		AddBox("b", filterSpec("true")).
		ConnectPorts(Port{Box: "a"}, Port{Box: "b"}, true).
		BindInput("in", tSchema, "a", 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !n.Arcs()[0].ConnectionPoint {
		t.Error("connection point flag lost")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid network")
		}
	}()
	NewBuilder("bad").AddBox("a", filterSpec("true")).MustBuild()
}

func TestMultiGroupTopoDeterminism(t *testing.T) {
	// Many parallel chains: topo order must be deterministic across builds.
	build := func() []string {
		b := NewBuilder("par")
		for _, id := range []string{"z", "m", "a", "q"} {
			b.AddBox(id, filterSpec("true")).BindInput("in_"+id, tSchema, id, 0)
		}
		return b.MustBuild().Boxes()
	}
	first := build()
	for i := 0; i < 5; i++ {
		got := build()
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("topo order nondeterministic: %v vs %v", first, got)
			}
		}
	}
}
