package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

func TestFloatGauge(t *testing.T) {
	r := NewRegistry()
	g := r.FloatGauge("output.out.utility")
	if g.Value() != 0 {
		t.Fatalf("fresh gauge = %v", g.Value())
	}
	g.Set(0.625)
	if g.Value() != 0.625 {
		t.Fatalf("gauge = %v, want 0.625", g.Value())
	}
	if r.FloatGauge("output.out.utility") != g {
		t.Fatal("registry not get-or-create for float gauges")
	}
	s := r.Snapshot()
	if s.FloatGauges["output.out.utility"] != 0.625 {
		t.Fatalf("snapshot = %+v", s.FloatGauges)
	}
	if !strings.Contains(r.Dump(), "fgauge output.out.utility = 0.625") {
		t.Errorf("Dump missing float gauge:\n%s", r.Dump())
	}
}

// goldenSnapshot is a registry with one metric of every type, with fixed
// values so the exposition is byte-stable.
func goldenSnapshot() RegistrySnapshot {
	r := NewRegistry()
	r.Counter("engine.delivered").Add(1234)
	r.Counter("engine.shed").Add(7)
	r.Gauge("engine.queued").Set(42)
	r.FloatGauge("output.out.utility").Set(0.875)
	r.EWMA("box.f.cost").Observe(500)
	h := r.Histogram("output.out.latency")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i * 1000))
	}
	return r.Snapshot()
}

// TestPrometheusGolden pins the exposition format byte for byte: a
// Prometheus scraper configured against one release must parse the next.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, goldenSnapshot(), map[string]string{"node": "n1"})
	got := b.String()

	path := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus exposition changed:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrometheusNameSanitization(t *testing.T) {
	if n := promName("box.f#2.work_ns"); n != "box_f_2_work_ns" {
		t.Errorf("promName = %q", n)
	}
	if n := promName("9lives"); n != "_9lives" {
		t.Errorf("leading digit: %q", n)
	}
	var b strings.Builder
	r := NewRegistry()
	r.Counter("a.b-c").Inc()
	WritePrometheus(&b, r.Snapshot(), nil)
	out := b.String()
	if !strings.Contains(out, "# TYPE a_b_c counter\na_b_c 1\n") {
		t.Errorf("unlabelled exposition:\n%s", out)
	}
}
