package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestHistogramQuantileTable pins the edge cases of the bucket-walk
// estimator as a table: empty histograms, q clamping at and beyond the
// extremes, single-bucket rank interpolation, and observations above the
// top bucket's nominal boundary (atomic_test.go covers the same ground
// as scenario subtests; this is the flat table the fix is pinned by).
func TestHistogramQuantileTable(t *testing.T) {
	cases := []struct {
		name string
		obs  []float64
		q    float64
		want float64
		tol  float64 // absolute tolerance; 0 means exact
	}{
		{name: "empty q=0", obs: nil, q: 0, want: 0},
		{name: "empty q=0.5", obs: nil, q: 0.5, want: 0},
		{name: "empty q=1", obs: nil, q: 1, want: 0},
		{name: "empty NaN q", obs: nil, q: math.NaN(), want: 0},

		{name: "single value q=0", obs: []float64{5000}, q: 0, want: 5000},
		{name: "single value q=0.5", obs: []float64{5000}, q: 0.5, want: 5000},
		{name: "single value q=1", obs: []float64{5000}, q: 1, want: 5000},

		{name: "q below 0 clamps to min", obs: []float64{10, 20, 30}, q: -3, want: 10},
		{name: "q above 1 clamps to max", obs: []float64{10, 20, 30}, q: 7, want: 30},
		{name: "NaN q clamps to min", obs: []float64{10, 20, 30}, q: math.NaN(), want: 10},

		// 1000 and 1050 share one log bucket (growth 1.09): rank
		// interpolation must resolve distinct quantiles inside it instead
		// of answering one midpoint for every q.
		{name: "single bucket low rank", obs: []float64{1000, 1050}, q: 0.25, want: 1019, tol: 20},
		{name: "single bucket high rank", obs: []float64{1000, 1050}, q: 0.75, want: 1031, tol: 20},

		// Values above bucketLow(histBuckets) ≈ 4e9 all land in the top
		// bucket; the estimate must reach up to the observed max instead
		// of clipping at the nominal bucket edge.
		{name: "above top bucket q=0.5", obs: []float64{1e12, 1e12, 1e12}, q: 0.5, want: 1e12, tol: 1e12 * 0.51},
		{name: "above top bucket q=1", obs: []float64{5e9, 1e12}, q: 1, want: 1e12},
		{name: "above top bucket q=0", obs: []float64{5e9, 1e12}, q: 0, want: 5e9},

		{name: "negative clamps to zero", obs: []float64{-5, -10}, q: 0.5, want: 0},
		{name: "zero values", obs: []float64{0, 0, 0}, q: 0.9, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			for _, v := range tc.obs {
				h.Observe(v)
			}
			got := h.Quantile(tc.q)
			if tc.tol == 0 {
				if got != tc.want {
					t.Fatalf("Quantile(%v) = %v, want exactly %v", tc.q, got, tc.want)
				}
				return
			}
			if math.Abs(got-tc.want) > tc.tol {
				t.Fatalf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
			}
		})
	}
}

// TestHistogramQuantileMonotone: quantile estimates must be
// non-decreasing in q — rank interpolation cannot reorder answers.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i%997) * 100)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

// TestSummaryBucketsCumulative: Snapshot's bucket list must be
// cumulative, ordered by le, and end at the total count.
func TestSummaryBucketsCumulative(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i * 37))
	}
	h.Observe(1e12) // beyond the top bucket edge
	s := h.Snapshot()
	if len(s.Buckets) == 0 {
		t.Fatal("no buckets in snapshot")
	}
	prevLe, prevCum := 0.0, uint64(0)
	for _, b := range s.Buckets {
		if b.Le <= prevLe {
			t.Fatalf("le not increasing: %v after %v", b.Le, prevLe)
		}
		if b.Count < prevCum {
			t.Fatalf("cumulative count decreased: %d after %d", b.Count, prevCum)
		}
		prevLe, prevCum = b.Le, b.Count
	}
	if prevCum != s.Count {
		t.Fatalf("last bucket %d != count %d", prevCum, s.Count)
	}
}

// TestPrometheusHistogramType: histograms must scrape as the histogram
// type with cumulative le buckets and a +Inf terminator.
func TestPrometheusHistogramType(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("output.out.latency_ns")
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i * 1000))
	}
	var b strings.Builder
	WritePrometheus(&b, r.Snapshot(), map[string]string{"node": "n1"})
	out := b.String()
	if !strings.Contains(out, "# TYPE output_out_latency_ns histogram\n") {
		t.Errorf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `output_out_latency_ns_bucket{node="n1",le="+Inf"} 50`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `output_out_latency_ns_count{node="n1"} 50`) {
		t.Errorf("missing _count:\n%s", out)
	}
	if strings.Contains(out, "quantile=") {
		t.Errorf("summary quantile labels leaked into histogram exposition:\n%s", out)
	}
	// Bucket lines must appear in increasing-le order and be cumulative.
	lines := strings.Split(out, "\n")
	var last uint64
	seen := 0
	for _, ln := range lines {
		if strings.Contains(ln, `le="+Inf"`) {
			continue
		}
		if strings.HasPrefix(ln, "output_out_latency_ns_bucket") {
			cum, err := strconv.ParseUint(ln[strings.LastIndexByte(ln, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("unparseable bucket line %q: %v", ln, err)
			}
			if cum < last {
				t.Fatalf("bucket counts not cumulative at %q", ln)
			}
			last = cum
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("no le buckets emitted")
	}
}
