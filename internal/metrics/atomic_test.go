package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramQuantileEdgeCases pins the contract at the boundaries:
// empty, a single observation, q outside [0,1], and a distribution where
// every observation lands in one bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram()
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
			}
		}
	})
	t.Run("single", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(1234)
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 1234 {
				t.Errorf("single-obs Quantile(%g) = %g, want 1234", q, got)
			}
		}
		if h.Mean() != 1234 || h.Count() != 1 {
			t.Errorf("single-obs Mean=%g Count=%d", h.Mean(), h.Count())
		}
	})
	t.Run("q-clamps", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(10)
		h.Observe(1e6)
		if got := h.Quantile(-5); got != 10 {
			t.Errorf("Quantile(-5) = %g, want exact min 10", got)
		}
		if got := h.Quantile(7); got != 1e6 {
			t.Errorf("Quantile(7) = %g, want exact max 1e6", got)
		}
	})
	t.Run("all-same-bucket", func(t *testing.T) {
		// 1000 and 1004 share a log bucket; every quantile must stay
		// clamped inside the observed [min, max] range.
		h := NewHistogram()
		for i := 0; i < 100; i++ {
			h.Observe(1000)
			h.Observe(1004)
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			got := h.Quantile(q)
			if got < 1000 || got > 1004 {
				t.Errorf("Quantile(%g) = %g, want within [1000, 1004]", q, got)
			}
		}
		if h.Quantile(0) != 1000 || h.Quantile(1) != 1004 {
			t.Errorf("extremes: min=%g max=%g", h.Quantile(0), h.Quantile(1))
		}
	})
	t.Run("huge-value-last-bucket", func(t *testing.T) {
		h := NewHistogram()
		h.Observe(math.MaxFloat64) // beyond the bucket range: clamps to the last bucket
		if got := h.Quantile(0.5); got != math.MaxFloat64 {
			t.Errorf("Quantile(0.5) = %g, want clamped max", got)
		}
	})
}

// TestObserveAllocationFree holds the package doc to its word: Observe on
// both EWMA and Histogram performs zero heap allocations.
func TestObserveAllocationFree(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f objects per call, want 0", n)
	}
	e := NewEWMA(0.2)
	if n := testing.AllocsPerRun(1000, func() { e.Observe(42) }); n != 0 {
		t.Errorf("EWMA.Observe allocates %.1f objects per call, want 0", n)
	}
}

// TestHistogramConcurrentObserve checks that the atomic counters hold up
// under contention (the race detector validates the memory model).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per + i + 1))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Errorf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	wantSum := float64(goroutines*per) * float64(goroutines*per+1) / 2
	if got := h.Mean() * float64(h.Count()); math.Abs(got-wantSum) > 1e-3*wantSum {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != goroutines*per {
		t.Errorf("min/max = %g/%g", h.Quantile(0), h.Quantile(1))
	}
}

// TestEWMAConcurrentObserve: concurrent folds must never lose the "seen"
// state or corrupt the float bits.
func TestEWMAConcurrentObserve(t *testing.T) {
	e := NewEWMA(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				e.Observe(100)
			}
		}()
	}
	wg.Wait()
	if v := e.Value(); math.Abs(v-100) > 1e-9 {
		t.Errorf("EWMA of constant 100 = %g", v)
	}
}

// The two benchmarks prove the "allocation-free, mutex-free on the hot
// path" claim: run with -benchmem and expect 0 B/op, 0 allocs/op; the
// parallel variants scale instead of serializing on a lock.

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&0xFFFF) + 1)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i&0xFFFF) + 1)
			i++
		}
	})
}

func BenchmarkEWMAObserve(b *testing.B) {
	e := NewEWMA(0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Observe(float64(i & 0xFF))
	}
}

func BenchmarkEWMAObserveParallel(b *testing.B) {
	e := NewEWMA(0.2)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			e.Observe(float64(i & 0xFF))
			i++
		}
	})
}
