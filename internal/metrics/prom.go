// Prometheus text exposition of a registry snapshot. The format is the
// classic text/plain version 0.0.4 Prometheus scrape format: counters as
// counter, gauges/float gauges/EWMAs as gauge, histograms as histogram
// with cumulative `le` buckets (non-empty buckets plus +Inf) and _sum
// and _count. Metric names are the registry's
// dotted names with every non-[a-zA-Z0-9_] byte mapped to '_'
// ("engine.delivered" scrapes as engine_delivered). Output is sorted by
// name so it is deterministic — the golden-file test pins it.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. labels (e.g. node="n1") are attached to every sample; pass nil
// for none. Keys within a family are emitted in sorted order.
func WritePrometheus(w io.Writer, s RegistrySnapshot, labels map[string]string) {
	lbl := formatLabels(labels)

	type family struct {
		name  string
		ptype string
		emit  func(name string)
	}
	var fams []family
	for n, v := range s.Counters {
		v := v
		fams = append(fams, family{n, "counter", func(name string) {
			fmt.Fprintf(w, "%s%s %d\n", name, lbl, v)
		}})
	}
	for n, v := range s.Gauges {
		v := v
		fams = append(fams, family{n, "gauge", func(name string) {
			fmt.Fprintf(w, "%s%s %d\n", name, lbl, v)
		}})
	}
	for n, v := range s.FloatGauges {
		v := v
		fams = append(fams, family{n, "gauge", func(name string) {
			fmt.Fprintf(w, "%s%s %v\n", name, lbl, v)
		}})
	}
	for n, v := range s.EWMAs {
		v := v
		fams = append(fams, family{n, "gauge", func(name string) {
			fmt.Fprintf(w, "%s%s %v\n", name, lbl, v)
		}})
	}
	for n, h := range s.Histograms {
		h := h
		fams = append(fams, family{n, "histogram", func(name string) {
			for _, b := range h.Buckets {
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabels(labels, fmt.Sprintf("%v", b.Le)), b.Count)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, leLabels(labels, "+Inf"), h.Count)
			fmt.Fprintf(w, "%s_sum%s %v\n", name, lbl, h.Sum())
			fmt.Fprintf(w, "%s_count%s %d\n", name, lbl, h.Count)
		}})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		name := promName(f.name)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.ptype)
		f.emit(name)
	}
}

// promName maps a dotted registry name onto the Prometheus name charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatLabels renders {k="v",...} with keys sorted, or "" when empty.
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", promName(k), labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// leLabels is formatLabels with the histogram bucket's `le` appended.
func leLabels(labels map[string]string, le string) string {
	base := formatLabels(labels)
	if base == "" {
		return `{le="` + le + `"}`
	}
	return base[:len(base)-1] + `,le="` + le + `"}`
}
