package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Counter = %d, want 8000", c.Value())
	}
	c.Add(5)
	if c.Value() != 8005 {
		t.Errorf("Add failed: %d", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Errorf("Gauge = %d", g.Value())
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Error("empty EWMA should be 0")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Error("first observation should seed the average")
	}
	for i := 0; i < 50; i++ {
		e.Observe(20)
	}
	if math.Abs(e.Value()-20) > 0.01 {
		t.Errorf("EWMA = %g, want ~20", e.Value())
	}
}

func TestEWMABadAlphaRepaired(t *testing.T) {
	e := NewEWMA(-3)
	e.Observe(5)
	if e.Value() != 5 {
		t.Error("repaired EWMA should still work")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.Float64() * 1e6
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		want := vals[int(q*float64(len(vals)))]
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("Quantile(%g) = %g, want ~%g (within 15%%)", q, got, want)
		}
	}
	if h.Quantile(0) != vals[0] {
		t.Error("q=0 should be exact min")
	}
	if h.Quantile(1) != vals[len(vals)-1] {
		t.Error("q=1 should be exact max")
	}
	mean := h.Mean()
	if math.Abs(mean-500000)/500000 > 0.05 {
		t.Errorf("Mean = %g, want ~500000", mean)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(-5) // clamped to 0
	if h.Quantile(0.5) != 0 {
		t.Error("negative observation should clamp to 0")
	}
}

func TestHistogramSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	s := h.Snapshot()
	if s.Count != 1 || !strings.Contains(s.String(), "n=1") {
		t.Errorf("Snapshot = %+v", s)
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Counter("x").Inc()
	if r.Counter("x").Value() != 2 {
		t.Error("registry must return the same counter per name")
	}
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(10)
	r.EWMA("e").Observe(3)
	dump := r.Dump()
	for _, want := range []string{"counter x = 2", "gauge g = 1", "ewma e", "hist h"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}
