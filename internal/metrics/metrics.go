// Package metrics provides the lightweight instrumentation used by every
// experiment in the repository: atomic counters, gauges, exponentially
// weighted rates, and a log-bucketed latency histogram with quantile
// estimation. Everything is allocation-free on the hot path.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// EWMA tracks an exponentially weighted moving average, used for the
// approximate cost and selectivity statistics of §7.1 ("monitored and
// maintained in an approximate fashion over a running network").
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; higher
// alpha weights recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a sample into the average.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init {
		e.val = x
		e.init = true
		return
	}
	e.val = e.alpha*x + (1-e.alpha)*e.val
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val
}

// Histogram is a log-bucketed histogram of non-negative values (typically
// latencies in nanoseconds). Buckets grow geometrically by bucketGrowth so
// that relative error stays bounded across nine decades.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
}

const (
	histBuckets  = 256
	bucketGrowth = 1.09 // ~256 buckets cover 1ns .. ~4e9ns
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets), min: math.Inf(1), max: math.Inf(-1)}
}

func bucketOf(x float64) int {
	if x < 1 {
		return 0
	}
	b := int(math.Log(x) / math.Log(bucketGrowth))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket b.
func bucketLow(b int) float64 {
	if b == 0 {
		return 0
	}
	return math.Pow(bucketGrowth, float64(b))
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	if x < 0 {
		x = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketOf(x)]++
	h.total++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile estimates the q'th quantile (q in [0, 1]) from the bucket
// boundaries; exact min/max are returned at the extremes.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.total))
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen > target {
			lo, hi := bucketLow(b), bucketLow(b+1)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max {
				hi = h.max
			}
			return (lo + hi) / 2
		}
	}
	return h.max
}

// Snapshot summarises the histogram.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Summary is a compact latency digest used in experiment tables.
type Summary struct {
	Count               uint64
	Mean, P50, P95, P99 float64
}

// String renders the summary for benchrunner tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%.0f p95=%.0f p99=%.0f",
		s.Count, s.Mean, s.P50, s.P95, s.P99)
}

// Registry is a named collection of metrics for one node or experiment.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	ewmas      map[string]*EWMA
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		ewmas:      map[string]*EWMA{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// EWMA returns (creating if needed) the named moving average.
func (r *Registry) EWMA(name string) *EWMA {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.ewmas[name]
	if !ok {
		e = NewEWMA(0.2)
		r.ewmas[name] = e
	}
	return e
}

// Dump renders every metric, sorted by name, for diagnostics.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for n, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", n, g.Value()))
	}
	for n, e := range r.ewmas {
		lines = append(lines, fmt.Sprintf("ewma %s = %.3f", n, e.Value()))
	}
	for n, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("hist %s = %s", n, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
