// Package metrics provides the lightweight instrumentation used by every
// experiment in the repository: atomic counters, gauges, exponentially
// weighted rates, and a log-bucketed latency histogram with quantile
// estimation. Everything is allocation-free and lock-free on the hot
// path: Observe on EWMA and Histogram compiles down to a handful of
// atomic operations, never a mutex and never a heap allocation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomically updated instantaneous float64 value,
// stored as raw bits in one atomic word — Set and Value are single
// atomic operations, usable on delivery hot paths. The delivered-QoS
// utility gauges are FloatGauges: utility is a fraction in [0, 1] that
// an integer Gauge would truncate to nothing.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ewmaEmpty marks an EWMA that has seen no observation. It is a NaN bit
// pattern that float64 arithmetic never produces (Go's canonical NaN is
// 0x7FF8000000000001; this one carries a different payload), so a stored
// value can never be mistaken for it.
const ewmaEmpty = 0x7FF8_0000_0000_dead

// EWMA tracks an exponentially weighted moving average, used for the
// approximate cost and selectivity statistics of §7.1 ("monitored and
// maintained in an approximate fashion over a running network"). The
// current value lives in a single atomic word as float64 bits; Observe is
// a CAS loop with no lock and no allocation. Construct with NewEWMA.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]; higher
// alpha weights recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	e := &EWMA{alpha: alpha}
	e.bits.Store(ewmaEmpty)
	return e
}

// Observe folds a sample into the average.
func (e *EWMA) Observe(x float64) {
	for {
		old := e.bits.Load()
		nv := x
		if old != ewmaEmpty {
			nv = e.alpha*x + (1-e.alpha)*math.Float64frombits(old)
		}
		nb := math.Float64bits(nv)
		if nb == ewmaEmpty {
			// An observed NaN whose payload collides with the sentinel:
			// store the canonical NaN instead so the state stays "seen".
			nb = math.Float64bits(math.NaN())
		}
		if e.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 {
	b := e.bits.Load()
	if b == ewmaEmpty {
		return 0
	}
	return math.Float64frombits(b)
}

// Histogram is a log-bucketed histogram of non-negative values (typically
// latencies in nanoseconds). Buckets grow geometrically by bucketGrowth so
// that relative error stays bounded across nine decades. All state is
// atomic: Observe touches a fixed set of atomic words — no mutex, no
// allocation — and readers get a weakly consistent snapshot, which is the
// right trade for monitoring data. Construct with NewHistogram.
type Histogram struct {
	counts  [histBuckets]atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits
	maxBits atomic.Uint64 // float64 bits
}

const (
	histBuckets  = 256
	bucketGrowth = 1.09 // ~256 buckets cover 1ns .. ~4e9ns
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

func bucketOf(x float64) int {
	if x < 1 {
		return 0
	}
	b := int(math.Log(x) / math.Log(bucketGrowth))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket b.
func bucketLow(b int) float64 {
	if b == 0 {
		return 0
	}
	return math.Pow(bucketGrowth, float64(b))
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	if x < 0 {
		x = 0
	}
	h.counts[bucketOf(x)].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, nb) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if x >= math.Float64frombits(old) {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(x)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if x <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(x)) {
			break
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load()) / float64(n)
}

func (h *Histogram) min() float64 { return math.Float64frombits(h.minBits.Load()) }
func (h *Histogram) max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile estimates the q'th quantile (q in [0, 1]) from the bucket
// boundaries. Exact min/max are returned at the extremes (q <= 0, q >= 1,
// and NaN clamps to 0); an empty histogram reports 0 for every q. Within
// the bucket holding rank q·(count-1) the estimate interpolates by rank
// between the bucket's clamped bounds, so a bucket holding many spread
// observations resolves distinct quantiles instead of one midpoint, and
// the top bucket — whose nominal upper edge the largest observations may
// exceed — extends to the observed max.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return h.min()
	}
	if q >= 1 {
		return h.max()
	}
	rank := q * float64(total-1)
	idx := uint64(rank)
	var seen uint64
	for b := range h.counts {
		c := h.counts[b].Load()
		if c == 0 {
			continue
		}
		if seen+c > idx {
			lo, hi := bucketLow(b), bucketLow(b+1)
			if b == histBuckets-1 {
				// Values above the top bucket boundary land here; the
				// observed max is the honest upper edge.
				if mx := h.max(); mx > hi {
					hi = mx
				}
			}
			if mn := h.min(); lo < mn {
				lo = mn
			}
			if mx := h.max(); hi > mx {
				hi = mx
			}
			if hi < lo {
				// A min above the bucket's range inverts the clamps; the
				// observed extreme is the only honest answer then.
				hi = lo
			}
			// Rank interpolation inside the bucket: the j'th of c
			// observations sits at fraction (j+0.5)/c between the bounds.
			frac := (rank - float64(seen) + 0.5) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return h.max()
}

// Snapshot summarises the histogram, including the cumulative bucket
// counts Prometheus histogram exposition needs (only buckets that
// actually hold observations are materialised, so the summary stays
// compact regardless of the fixed bucket array).
func (h *Histogram) Snapshot() Summary {
	s := Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	var cum uint64
	for b := range h.counts {
		c := h.counts[b].Load()
		if c == 0 {
			continue
		}
		cum += c
		s.Buckets = append(s.Buckets, BucketCount{Le: bucketLow(b + 1), Count: cum})
	}
	return s
}

// BucketCount is one cumulative histogram bucket: Count observations
// were <= Le (Prometheus `le` semantics; the top bucket's nominal edge
// may undercount values beyond it, which the +Inf bucket absorbs).
type BucketCount struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Summary is a compact latency digest used in experiment tables.
type Summary struct {
	Count               uint64
	Mean, P50, P95, P99 float64
	Buckets             []BucketCount `json:"Buckets,omitempty"`
}

// Sum returns the total of all observations (Mean × Count) — the form
// the stats plane differences to bucket histogram traffic into windows.
func (s Summary) Sum() float64 { return s.Mean * float64(s.Count) }

// String renders the summary for benchrunner tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p50=%.0f p95=%.0f p99=%.0f",
		s.Count, s.Mean, s.P50, s.P95, s.P99)
}

// Registry is a named collection of metrics for one node or experiment.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
	ewmas       map[string]*EWMA
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		floatGauges: map[string]*FloatGauge{},
		histograms:  map[string]*Histogram{},
		ewmas:       map[string]*EWMA{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns (creating if needed) the named float gauge.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floatGauges[name]
	if !ok {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// EWMA returns (creating if needed) the named moving average.
func (r *Registry) EWMA(name string) *EWMA {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.ewmas[name]
	if !ok {
		e = NewEWMA(0.2)
		r.ewmas[name] = e
	}
	return e
}

// RegistrySnapshot is a typed, programmatic view of every metric in a
// registry at one instant — the structured counterpart of Dump, consumed
// by the auroranode /metrics endpoint and machine-readable bench output.
type RegistrySnapshot struct {
	Counters    map[string]int64   `json:"counters,omitempty"`
	Gauges      map[string]int64   `json:"gauges,omitempty"`
	FloatGauges map[string]float64 `json:"float_gauges,omitempty"`
	EWMAs       map[string]float64 `json:"ewmas,omitempty"`
	Histograms  map[string]Summary `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric with its current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{
		Counters:    make(map[string]int64, len(r.counters)),
		Gauges:      make(map[string]int64, len(r.gauges)),
		FloatGauges: make(map[string]float64, len(r.floatGauges)),
		EWMAs:       make(map[string]float64, len(r.ewmas)),
		Histograms:  make(map[string]Summary, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, g := range r.floatGauges {
		s.FloatGauges[n] = g.Value()
	}
	for n, e := range r.ewmas {
		s.EWMAs[n] = e.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Dump renders every metric, sorted by name, for diagnostics.
func (r *Registry) Dump() string {
	s := r.Snapshot()
	var lines []string
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", n, v))
	}
	for n, v := range s.FloatGauges {
		lines = append(lines, fmt.Sprintf("fgauge %s = %.3f", n, v))
	}
	for n, v := range s.EWMAs {
		lines = append(lines, fmt.Sprintf("ewma %s = %.3f", n, v))
	}
	for n, v := range s.Histograms {
		lines = append(lines, fmt.Sprintf("hist %s = %s", n, v))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
