package engine

import (
	"os"
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
)

func filterNet(t *testing.T) *query.Network {
	t.Helper()
	n, err := query.NewBuilder("flt").
		AddBox("f", filterSpec("B < 100")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEngineTraceDecomposition: on the virtual clock, every delivered
// span must decompose exactly — Queue+Proc+Net equals End-Birth, Birth
// equals the tuple's TS, and the mean of span totals equals the mean the
// QoS monitor recorded, because deliver hands both the same timestamp.
func TestEngineTraceDecomposition(t *testing.T) {
	rec := trace.NewRecorder(256)
	e, _ := newVirtualEngine(t, filterNet(t), Config{
		Tracer: trace.NewTracer("n1", 1, rec),
	})
	var spans []*trace.Span
	e.OnOutput(func(_ string, tp stream.Tuple) {
		if tp.Span == nil {
			t.Fatal("tracer every=1 delivered an untraced tuple")
		}
		spans = append(spans, tp.Span)
	})
	const n = 20
	for i := 0; i < n; i++ {
		e.Ingest("in", tuple(int64(i), 5))
		e.RunUntilIdle(0)
	}
	if len(spans) != n {
		t.Fatalf("delivered %d spans, want %d", len(spans), n)
	}
	var sum int64
	for _, sp := range spans {
		if !sp.Done() {
			t.Fatalf("undelivered span: %+v", sp)
		}
		q, p, nn := sp.Components()
		if q+p+nn != sp.Total() {
			t.Fatalf("decomposition %d+%d+%d != total %d", q, p, nn, sp.Total())
		}
		if nn != 0 {
			t.Errorf("in-process path accrued net time %d", nn)
		}
		sum += sp.Total()
	}
	// The monitor and the trace saw the very same latencies.
	lat := e.Metrics().Histogram("output.out.latency_ns").Snapshot()
	if lat.Count != n {
		t.Fatalf("monitor observed %d deliveries, want %d", lat.Count, n)
	}
	if mean := float64(sum) / n; lat.Mean != mean {
		t.Errorf("monitor mean %f != trace mean %f", lat.Mean, mean)
	}
	// Component histograms populated; flight recorder holds the stages.
	if c := e.Metrics().Histogram("trace.queue_ns").Snapshot().Count; c != n {
		t.Errorf("trace.queue_ns count = %d, want %d", c, n)
	}
	if rec.Total() == 0 {
		t.Error("flight recorder saw nothing")
	}
}

// TestEngineTraceSampling: every=4 traces a quarter of ingested tuples;
// the rest flow through with nil spans.
func TestEngineTraceSampling(t *testing.T) {
	e, _ := newVirtualEngine(t, filterNet(t), Config{
		Tracer: trace.NewTracer("n1", 4, nil),
	})
	traced := 0
	e.OnOutput(func(_ string, tp stream.Tuple) {
		if tp.Span != nil {
			traced++
		}
	})
	for i := 0; i < 100; i++ {
		e.Ingest("in", tuple(int64(i), 5))
	}
	e.RunUntilIdle(0)
	if traced != 25 {
		t.Errorf("traced %d of 100 with every=4, want 25", traced)
	}
}

// TestEngineTraceDerivedTuples: window operators emit derived tuples; the
// derived tuple inherits the span of the tuple whose arrival triggered
// the emission, and the identity still holds across the chain.
func TestEngineTraceDerivedTuples(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{
		Tracer: trace.NewTracer("n1", 1, nil),
	})
	var spans []*trace.Span
	e.OnOutput(func(_ string, tp stream.Tuple) {
		if tp.Span != nil {
			spans = append(spans, tp.Span)
		}
	})
	rows := [][2]int64{{1, 2}, {1, 3}, {2, 2}, {2, 1}, {4, 5}}
	for _, r := range rows {
		e.Ingest("in", tuple(r[0], r[1]))
		e.RunUntilIdle(0)
	}
	e.Drain()
	if len(spans) == 0 {
		t.Fatal("no traced aggregate reached the output")
	}
	for _, sp := range spans {
		q, p, n := sp.Components()
		if q+p+n != sp.Total() {
			t.Errorf("derived span decomposition %d+%d+%d != %d", q, p, n, sp.Total())
		}
	}
}

// buildBenchEngine is the fixture for the overhead guard: a filter chain
// on a virtual clock, tracing off or sampled 1-in-8.
func buildBenchEngine(b *testing.B, every int) *Engine {
	b.Helper()
	n, err := query.NewBuilder("flt").
		AddBox("f", filterSpec("B < 100")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, nil).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Clock: NewVirtualClock(1)}
	if every > 0 {
		cfg.Tracer = trace.NewTracer("bench", every, trace.NewRecorder(1024))
	}
	e, err := New(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchIngestStep(b *testing.B, every int) {
	e := buildBenchEngine(b, every)
	t := tuple(1, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest("in", t)
		e.Step()
	}
}

func BenchmarkEngineTracingOff(b *testing.B)     { benchIngestStep(b, 0) }
func BenchmarkEngineTracingSampled(b *testing.B) { benchIngestStep(b, 8) }

// TestTraceOverheadGuard is the CI regression fence: the tracing-off hot
// path must not regress because tracing exists. It compares the off path
// against the sampled-on path and fails if off is slower than on by more
// than 30% — off paying anything close to the sampled path's cost means a
// nil check grew into real work. Gated behind CI_TRACE_GUARD=1 because
// timing comparisons are too noisy for default -race test runs.
func TestTraceOverheadGuard(t *testing.T) {
	if os.Getenv("CI_TRACE_GUARD") != "1" {
		t.Skip("set CI_TRACE_GUARD=1 to run the trace overhead guard")
	}
	off := testing.Benchmark(BenchmarkEngineTracingOff)
	on := testing.Benchmark(BenchmarkEngineTracingSampled)
	offNs := float64(off.NsPerOp())
	onNs := float64(on.NsPerOp())
	t.Logf("tracing off: %.0f ns/op, sampled 1-in-8: %.0f ns/op", offNs, onNs)
	if offNs > onNs*1.3 {
		t.Fatalf("tracing-off path (%.0f ns/op) slower than sampled-on (%.0f ns/op): the disabled path regressed", offNs, onNs)
	}
}
