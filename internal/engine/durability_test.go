package engine

import (
	"os"
	"testing"

	"repro/internal/events"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/stream"
)

// TestCPHistoryChargedToStorage is the accounting-bugfix regression:
// connection-point history bytes — the state §2.3 says dominates memory —
// must be visible to qBytes and the storage manager, not just box input
// queues. Before the fix, a fully-drained network with a fat history
// reported zero queued bytes and no spill pressure.
func TestCPHistoryChargedToStorage(t *testing.T) {
	e, _ := newVirtualEngine(t, cpNet(t), Config{MemoryBudget: 4096})
	e.OnOutput(func(string, stream.Tuple) {})
	for i := 0; i < 50; i++ {
		e.Ingest("in", tuple(int64(i), int64(i)))
	}
	e.RunUntilIdle(0)
	if e.QueuedTuples() != 0 {
		t.Fatalf("network should be drained, %d queued", e.QueuedTuples())
	}
	cps := e.ConnectionPoints()
	if len(cps) != 1 {
		t.Fatalf("connection points = %v", cps)
	}
	hist := e.cpHist[cps[0]]
	if hist.Bytes() == 0 {
		t.Fatal("history retained nothing; test needs retained tuples")
	}
	// The drained network's only retained state is the history window, and
	// the byte accounting must say exactly that.
	if got := e.QueuedBytes(); got != hist.Bytes() {
		t.Errorf("QueuedBytes = %d, want history's %d (CP bytes must be charged)", got, hist.Bytes())
	}
	if e.Storage().HighWater() < hist.Bytes() {
		t.Errorf("HighWater = %d below history footprint %d", e.Storage().HighWater(), hist.Bytes())
	}
}

// TestCPEvictionRefundsBytes: when the history window evicts, the freed
// bytes must come back off qBytes — charging adds without refunding
// evictions would count the same window twice.
func TestCPEvictionRefundsBytes(t *testing.T) {
	// Budget 256 -> history window of 32 bytes: constant turnover.
	e, _ := newVirtualEngine(t, cpNet(t), Config{MemoryBudget: 256})
	e.OnOutput(func(string, stream.Tuple) {})
	for i := 0; i < 200; i++ {
		e.Ingest("in", tuple(int64(i), int64(i)))
		e.RunUntilIdle(0)
	}
	hist := e.cpHist[e.ConnectionPoints()[0]]
	if got := e.QueuedBytes(); got != hist.Bytes() {
		t.Errorf("QueuedBytes = %d after turnover, want history's %d", got, hist.Bytes())
	}
	if e.CPEvicted() == 0 {
		t.Error("32-byte window over 200 tuples must evict")
	}
	snap := e.Metrics().Snapshot()
	if snap.Counters["cp.evicted"] != e.CPEvicted() {
		t.Errorf("cp.evicted metric = %d, want %d", snap.Counters["cp.evicted"], e.CPEvicted())
	}
}

// TestPressureWindowDecays is the latched-pressure bugfix regression: one
// transient burst must not report "paging" forever. The all-time
// Pressure() latches by design; the windowed reading decays once the
// backlog drains and a reset starts a new window.
func TestPressureWindowDecays(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{MemoryBudget: 256})
	e.OnOutput(func(string, stream.Tuple) {})
	for i := 0; i < 100; i++ {
		e.Ingest("in", tuple(1, int64(i)))
	}
	st := e.Storage()
	if st.Pressure() <= 1 || st.PressureWindow() <= 1 {
		t.Fatalf("burst should show in both readings: all-time %g, window %g",
			st.Pressure(), st.PressureWindow())
	}
	e.Drain()
	// One small enqueue after the drain gives the window a current total.
	e.Ingest("in", tuple(1, 1))
	e.RunUntilIdle(0)
	st.ResetPressureWindow()
	if st.PressureWindow() > 1 {
		t.Errorf("window pressure = %g after drain+reset, want decayed below 1", st.PressureWindow())
	}
	if st.Pressure() <= 1 {
		t.Errorf("all-time pressure = %g, must stay latched above 1", st.Pressure())
	}
}

// TestCPEvictDuringResyncJournaled: history evicted while an HA resync is
// replaying silently truncates what the replay can reproduce — the fix
// makes it an attributable, corr-chained journal event.
func TestCPEvictDuringResyncJournaled(t *testing.T) {
	j := events.NewJournal("n1", 64)
	e, _ := newVirtualEngine(t, cpNet(t), Config{MemoryBudget: 256, Journal: j})
	e.OnOutput(func(string, stream.Tuple) {})

	// Quiet evictions (no resync in flight) must not journal.
	for i := 0; i < 50; i++ {
		e.Ingest("in", tuple(int64(i), int64(i)))
	}
	e.RunUntilIdle(0)
	if e.CPEvicted() == 0 {
		t.Fatal("tiny history window must evict")
	}
	if got := j.Len(); got != 0 {
		t.Fatalf("quiet evictions journaled %d events, want 0", got)
	}

	corr := j.NewCorr()
	e.BeginResync(corr)
	for i := 50; i < 100; i++ {
		e.Ingest("in", tuple(int64(i), int64(i)))
	}
	e.RunUntilIdle(0)
	e.EndResync()

	evs := j.Tail(64)
	var found bool
	for _, ev := range evs {
		if ev.Kind == events.KindCPEvict {
			found = true
			if ev.Corr != corr {
				t.Errorf("cp-evict corr = %x, want the resync's %x", ev.Corr, corr)
			}
			if ev.V1 <= 0 {
				t.Errorf("cp-evict V1 (dropped) = %g, want > 0", ev.V1)
			}
		}
	}
	if !found {
		t.Fatal("eviction during active resync did not journal a cp-evict event")
	}
}

// TestCPSpillAbsorbsEviction wires the disk spill through Config.CPSpill:
// under memory pressure the history pages to segment files instead of
// dropping, replay returns the full history, and a fresh engine over the
// same data dir recovers the spilled prefix.
func TestCPSpillAbsorbsEviction(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spill := func(p query.Port) stream.Spill {
		l, err := mgr.CPLog(p.Box)
		if err != nil {
			t.Fatal(err)
		}
		return storage.NewCPSpill(l, 0)
	}
	e, _ := newVirtualEngine(t, cpNet(t), Config{MemoryBudget: 256, CPSpill: spill})
	e.OnOutput(func(string, stream.Tuple) {})
	for i := 0; i < 100; i++ {
		e.Ingest("in", tuple(int64(i), int64(i)))
		e.RunUntilIdle(0)
	}
	if e.CPEvicted() != 0 {
		t.Errorf("CPEvicted = %d with an unbounded spill, want 0", e.CPEvicted())
	}
	cp := e.ConnectionPoints()[0]
	hist := e.cpHist[cp]
	if hist.SpillBytes() == 0 {
		t.Fatal("32-byte memory window over 100 tuples must have spilled to disk")
	}
	// Ad hoc attachment sees the whole history: disk prefix + memory window.
	var got []int64
	replayed, err := e.AttachAdHoc(cp, func(tp stream.Tuple) {
		got = append(got, tp.Field(0).AsInt())
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 100 {
		t.Fatalf("ad hoc replayed %d tuples, want all 100 (spill included)", replayed)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("replay[%d] = %d, want %d (oldest-first across disk+memory)", i, v, i)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh engine over the reopened dir starts with the
	// spilled history already attached.
	mgr2, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	spill2 := func(p query.Port) stream.Spill {
		l, err := mgr2.CPLog(p.Box)
		if err != nil {
			t.Fatal(err)
		}
		return storage.NewCPSpill(l, 0)
	}
	e2, _ := newVirtualEngine(t, cpNet(t), Config{MemoryBudget: 256, CPSpill: spill2})
	e2.OnOutput(func(string, stream.Tuple) {})
	var rec []int64
	replayed2, err := e2.AttachAdHoc(cp, func(tp stream.Tuple) {
		rec = append(rec, tp.Field(0).AsInt())
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed2 == 0 || int(rec[0]) != 0 {
		t.Fatalf("recovered engine replayed %d tuples starting at %v, want the spilled prefix from tuple 0", replayed2, rec)
	}
}

// benchCPNet is cpNet for benchmarks (testing.B is not a *testing.T).
func benchCPNet(b *testing.B) *query.Network {
	b.Helper()
	n, err := query.NewBuilder("cp").
		AddBox("f1", filterSpec("B < 100")).
		AddBox("f2", filterSpec("B < 50")).
		ConnectPorts(query.Port{Box: "f1"}, query.Port{Box: "f2"}, true).
		BindInput("in", tSchema, "f1", 0).
		BindOutput("out", "f2", 0, nil).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// benchIngestStepDurable drives the CP network with the memory budget
// comfortably above the working set, with or without a disk spill
// configured. Under budget the spill never sees an append — the guard
// pins exactly that bargain.
func benchIngestStepDurable(b *testing.B, durable bool) {
	// Size the budget so the history window (budget/8) holds every tuple
	// the loop will retain, with 2x slack: "under budget" must hold for
	// the whole run or the spill path would measure eviction I/O instead
	// of the attached-but-idle overhead the guard is about.
	t := tuple(1, 5)
	cfg := Config{MemoryBudget: (b.N + 4096) * t.MemSize() * 8 * 2}
	var mgr *storage.Manager
	if durable {
		var err error
		if mgr, err = storage.Open(b.TempDir()); err != nil {
			b.Fatal(err)
		}
		defer mgr.Close()
		cfg.CPSpill = func(p query.Port) stream.Spill {
			l, err := mgr.CPLog(p.Box)
			if err != nil {
				b.Fatal(err)
			}
			return storage.NewCPSpill(l, 0)
		}
	}
	e, err := New(benchCPNet(b), cfg)
	if err != nil {
		b.Fatal(err)
	}
	e.OnOutput(func(string, stream.Tuple) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest("in", t)
		e.Step()
	}
}

func BenchmarkEngineCPMemoryOnly(b *testing.B) { benchIngestStepDurable(b, false) }
func BenchmarkEngineCPDiskBacked(b *testing.B) { benchIngestStepDurable(b, true) }

// TestDurabilityOverheadGuard is the CI fence for the durable state plane:
// with a disk spill attached to every connection point but the history
// under its memory budget, the per-tuple path must stay within 5% of the
// memory-only configuration — spill-on-evict means a node under budget
// pays for durability only when it would otherwise drop history. Gated
// behind CI_DURABILITY_GUARD=1; best-of-3 alternating rounds damp noise.
func TestDurabilityOverheadGuard(t *testing.T) {
	if os.Getenv("CI_DURABILITY_GUARD") != "1" {
		t.Skip("set CI_DURABILITY_GUARD=1 to run the durability overhead guard")
	}
	testing.Benchmark(BenchmarkEngineCPMemoryOnly)
	testing.Benchmark(BenchmarkEngineCPDiskBacked)
	memNs, diskNs := 0.0, 0.0
	for i := 0; i < 3; i++ {
		mem := float64(testing.Benchmark(BenchmarkEngineCPMemoryOnly).NsPerOp())
		disk := float64(testing.Benchmark(BenchmarkEngineCPDiskBacked).NsPerOp())
		if memNs == 0 || mem < memNs {
			memNs = mem
		}
		if diskNs == 0 || disk < diskNs {
			diskNs = disk
		}
	}
	t.Logf("memory-only: %.0f ns/op, disk-backed under budget: %.0f ns/op (%.1f%%)",
		memNs, diskNs, (diskNs/memNs-1)*100)
	if diskNs > memNs*1.05 {
		t.Fatalf("disk-backed path %.0f ns/op exceeds 5%% over memory-only %.0f ns/op", diskNs, memNs)
	}
}
