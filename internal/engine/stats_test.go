package engine

import (
	"os"
	"testing"

	"repro/internal/query"
	"repro/internal/stats"
)

// TestEngineSampleStats: the engine folds the §7.1 monitored statistics
// of every box into the configured store — cost and selectivity as
// gauges, cumulative work as a counter the store turns into a CPU-share
// rate.
func TestEngineSampleStats(t *testing.T) {
	st := stats.NewStore(1e6, 8) // 1ms windows on the virtual clock
	e, _ := newVirtualEngine(t, filterNet(t), Config{
		Clock:          NewVirtualClock(0),
		DefaultBoxCost: 500,
		Stats:          st,
		StatsEvery:     1,
	})
	for i := 0; i < 50; i++ {
		e.Ingest("in", tuple(int64(i), 5))
		e.RunUntilIdle(0)
	}
	now := e.Clock().Now()
	names := st.Names()
	for _, want := range []string{
		stats.SeriesBoxCost("f"),
		stats.SeriesBoxSelectivity("f"),
		stats.SeriesBoxQueue("f"),
		stats.SeriesBoxWork("f"),
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("series %q not sampled (have %v)", want, names)
		}
	}
	if v, ok := st.Latest(stats.SeriesBoxCost("f"), now); !ok || v != 500 {
		t.Errorf("box cost = %v, %v; want 500 (virtCost)", v, ok)
	}
	if v, ok := st.Latest(stats.SeriesBoxSelectivity("f"), now); !ok || v != 1 {
		t.Errorf("selectivity = %v, %v; want 1 (filter passes all)", v, ok)
	}
	if e.BusyNs() != 50*500 {
		t.Errorf("BusyNs = %d; want %d", e.BusyNs(), 50*500)
	}
	if e.StatsStore() != st {
		t.Error("StatsStore should return the configured store")
	}
}

// TestEngineStatsAutoSampleCadence: with StatsEvery=4 only every fourth
// step samples; with Stats nil nothing is sampled and SampleStats is a
// no-op.
func TestEngineStatsAutoSampleCadence(t *testing.T) {
	st := stats.NewStore(1e9, 4)
	e, _ := newVirtualEngine(t, filterNet(t), Config{
		Clock: NewVirtualClock(0), Stats: st, StatsEvery: 4,
	})
	for i := 0; i < 3; i++ {
		e.Ingest("in", tuple(int64(i), 5))
		e.Step()
	}
	if n := len(st.Names()); n != 0 {
		t.Fatalf("sampled after 3 steps with StatsEvery=4: %d series", n)
	}
	e.Ingest("in", tuple(9, 5))
	e.Step()
	if n := len(st.Names()); n == 0 {
		t.Fatal("step 4 should have sampled")
	}

	off, _ := newVirtualEngine(t, filterNet(t), Config{Clock: NewVirtualClock(0)})
	off.SampleStats(0) // must not panic with no store
	if off.StatsStore() != nil {
		t.Error("StatsStore should be nil when unconfigured")
	}
}

// TestShedderPerBoxDropCounters: drops at ingest are attributed to the
// input's destination boxes via shed.drop.<box> counters, and surface in
// the stats store as box drop series.
func TestShedderPerBoxDropCounters(t *testing.T) {
	st := stats.NewStore(1e6, 8)
	n, err := query.NewBuilder("flt").
		AddBox("f", filterSpec("B < 100")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(n, Config{
		Clock: NewVirtualClock(0),
		Shed: &ShedConfig{
			Mode: ShedRandom, QueueHigh: 4, QueueLow: 1,
			StepUp: 0.5, MaxDrop: 0.9, Seed: 7,
		},
		Stats: st, StatsEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flood without stepping so the queue exceeds QueueHigh, step once so
	// the control loop raises the drop rate, then keep flooding: the
	// shedder now drops ~half the arrivals at ingest.
	for i := 0; i < 500; i++ {
		e.Ingest("in", tuple(int64(i), 5))
	}
	e.Step() // drains one train (128), leaves the queue over QueueHigh
	for i := 0; i < 1000; i++ {
		e.Ingest("in", tuple(int64(i), 5))
	}
	dropped := e.Metrics().Counter("shed.drop.f").Value()
	if dropped == 0 {
		t.Fatal("no per-box drops recorded despite shedding pressure")
	}
	if total := e.Metrics().Counter("engine.shed").Value(); dropped != total {
		t.Errorf("shed.drop.f = %d but engine.shed = %d; single-dest input should match", dropped, total)
	}
	e.RunUntilIdle(0)
	e.SampleStats(e.Clock().Now())
	found := false
	for _, name := range st.Names() {
		if name == stats.SeriesBoxDrops("f") {
			found = true
		}
	}
	if !found {
		t.Errorf("drop series %q missing from store (have %v)",
			stats.SeriesBoxDrops("f"), st.Names())
	}
}

func benchIngestStepStats(b *testing.B, every int) {
	n, err := query.NewBuilder("flt").
		AddBox("f", filterSpec("B < 100")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, nil).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Clock: NewVirtualClock(1)}
	if every > 0 {
		cfg.Stats = stats.NewStore(1e6, 8)
		cfg.StatsEvery = every
	}
	e, err := New(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	t := tuple(1, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest("in", t)
		e.Step()
	}
}

func BenchmarkEngineStatsOff(b *testing.B)     { benchIngestStepStats(b, 0) }
func BenchmarkEngineStatsSampled(b *testing.B) { benchIngestStepStats(b, 64) }

// TestStatsOverheadGuard is the CI regression fence for the stats plane,
// the analogue of TestTraceOverheadGuard: the stats-off hot path must not
// regress because the plane exists — off paying anything close to the
// sampled path's cost means a nil check grew into real work. Gated behind
// CI_STATS_GUARD=1 because timing comparisons are too noisy for default
// test runs.
func TestStatsOverheadGuard(t *testing.T) {
	if os.Getenv("CI_STATS_GUARD") != "1" {
		t.Skip("set CI_STATS_GUARD=1 to run the stats overhead guard")
	}
	off := testing.Benchmark(BenchmarkEngineStatsOff)
	on := testing.Benchmark(BenchmarkEngineStatsSampled)
	offNs := float64(off.NsPerOp())
	onNs := float64(on.NsPerOp())
	t.Logf("stats off: %.0f ns/op, sampled 1-in-64: %.0f ns/op", offNs, onNs)
	if offNs > onNs*1.3 {
		t.Fatalf("stats-off path (%.0f ns/op) slower than sampled-on (%.0f ns/op): the disabled path regressed", offNs, onNs)
	}
}
