package engine

import (
	"testing"

	"repro/internal/query"
	"repro/internal/stream"
)

// cpNet builds in -> f1 =CP=> f2 -> out with a connection point between
// the filters.
func cpNet(t *testing.T) *query.Network {
	t.Helper()
	n, err := query.NewBuilder("cp").
		AddBox("f1", filterSpec("B < 100")).
		AddBox("f2", filterSpec("B < 50")).
		ConnectPorts(query.Port{Box: "f1"}, query.Port{Box: "f2"}, true).
		BindInput("in", tSchema, "f1", 0).
		BindOutput("out", "f2", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConnectionPointHistoryAndAdHoc(t *testing.T) {
	e, _ := newVirtualEngine(t, cpNet(t), Config{})
	e.OnOutput(func(string, stream.Tuple) {})

	cps := e.ConnectionPoints()
	if len(cps) != 1 || cps[0].Box != "f1" {
		t.Fatalf("connection points = %v", cps)
	}

	// Historical tuples flow before the ad hoc query exists.
	for i := 0; i < 20; i++ {
		e.Ingest("in", tuple(int64(i), int64(i)))
	}
	e.RunUntilIdle(0)

	// Attach an ad hoc consumer: it must see the history first (§2.2),
	// then live tuples.
	var got []int64
	replayed, err := e.AttachAdHoc(cps[0], func(tp stream.Tuple) {
		got = append(got, tp.Field(0).AsInt())
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 20 || len(got) != 20 {
		t.Fatalf("replayed %d history tuples, want 20", replayed)
	}
	for i := 20; i < 30; i++ {
		e.Ingest("in", tuple(int64(i), 1))
	}
	e.RunUntilIdle(0)
	if len(got) != 30 || got[29] != 29 {
		t.Fatalf("live tuples missing: %v", got)
	}
}

func TestAdHocSecondEngineAsQuery(t *testing.T) {
	// The attached ad hoc "query" is itself an Aurora engine: the §2.2
	// model of attaching new queries at predetermined arcs.
	prim, _ := newVirtualEngine(t, cpNet(t), Config{})
	prim.OnOutput(func(string, stream.Tuple) {})

	adhocNet, err := query.NewBuilder("adhoc").
		AddBox("agg", tumbleSpec()).
		BindInput("cp", tSchema, "agg", 0).
		BindOutput("counts", "agg", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	adhoc, _ := newVirtualEngine(t, adhocNet, Config{})
	var counts []stream.Tuple
	adhoc.OnOutput(func(_ string, tp stream.Tuple) { counts = append(counts, tp) })

	for i := 0; i < 10; i++ {
		prim.Ingest("in", tuple(1, int64(i)))
	}
	prim.RunUntilIdle(0)
	if _, err := prim.AttachAdHoc(query.Port{Box: "f1"}, func(tp stream.Tuple) {
		adhoc.Ingest("cp", tp)
		adhoc.RunUntilIdle(0)
	}); err != nil {
		t.Fatal(err)
	}
	// New group arrives: closes the A=1 window inside the ad hoc query,
	// which saw the full history.
	prim.Ingest("in", tuple(2, 1))
	prim.RunUntilIdle(0)
	adhoc.Drain()
	if len(counts) == 0 {
		t.Fatal("ad hoc query produced nothing")
	}
	if counts[0].Field(1).AsInt() != 10 {
		t.Errorf("ad hoc count = %d, want 10 (history replay included)", counts[0].Field(1).AsInt())
	}
}

func TestAttachAdHocErrors(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	if _, err := e.AttachAdHoc(query.Port{Box: "f"}, func(stream.Tuple) {}); err == nil {
		t.Error("non-connection-point should be rejected")
	}
	if got := e.ConnectionPoints(); len(got) != 0 {
		t.Errorf("plain chain has no connection points: %v", got)
	}
}

func TestEarliestDependency(t *testing.T) {
	// A chain with a Tumble: the engine's dependency low-water mark must
	// track queued tuples and open window state (§6.2).
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	e.OnOutput(func(string, stream.Tuple) {})
	if _, ok := e.EarliestDependency(); ok {
		t.Fatal("fresh engine holds no state")
	}
	// Queue three tuples without running: dependency = first seq.
	t1 := stream.Tuple{Seq: 10, Vals: []stream.Value{stream.Int(1), stream.Int(1)}}
	t2 := stream.Tuple{Seq: 11, Vals: []stream.Value{stream.Int(1), stream.Int(2)}}
	t3 := stream.Tuple{Seq: 12, Vals: []stream.Value{stream.Int(1), stream.Int(3)}}
	e.Ingest("in", t1)
	e.Ingest("in", t2)
	e.Ingest("in", t3)
	if dep, ok := e.EarliestDependency(); !ok || dep != 10 {
		t.Fatalf("queued dep = %d, %v; want 10", dep, ok)
	}
	// Process everything: the tuples collapse into the open Tumble
	// window, whose earliest contributor is still seq 10.
	e.RunUntilIdle(0)
	if dep, ok := e.EarliestDependency(); !ok || dep != 10 {
		t.Fatalf("windowed dep = %d, %v; want 10", dep, ok)
	}
	// A new group closes the window; the open state is now the new
	// group's first tuple.
	t4 := stream.Tuple{Seq: 13, Vals: []stream.Value{stream.Int(2), stream.Int(1)}}
	e.Ingest("in", t4)
	e.RunUntilIdle(0)
	if dep, ok := e.EarliestDependency(); !ok || dep != 13 {
		t.Fatalf("after window close dep = %d, %v; want 13", dep, ok)
	}
	// Drain flushes all state: no dependency remains.
	e.Drain()
	if _, ok := e.EarliestDependency(); ok {
		t.Error("drained engine should hold no state")
	}
}
