package engine

import (
	"sort"

	"repro/internal/events"
	"repro/internal/sketch"
	"repro/internal/stats"
)

// The latency-SLO plane closes the loop between the QoS monitor and the
// statistics plane: every output's delivered latency feeds a mergeable
// quantile sketch (published to the stats store and gossiped inside
// digests), traced tail spans feed a per-box queue/proc/net attribution,
// and once per stats window a forecaster regresses the output's recent
// p99 trajectory against its QoS latency cliff — journaling an SLO
// warning, with the attributed bottleneck box chained on the same
// correlation id, before delivered utility actually drops.

// SLOConfig tunes the latency-SLO plane. The zero value of every field
// selects a sensible default, so &SLOConfig{} enables the plane as-is.
type SLOConfig struct {
	// CliffFrac locates the latency cliff on the output's QoS latency
	// graph: the largest latency whose utility is still CliffFrac of the
	// graph's maximum (0 means 0.9).
	CliffFrac float64
	// Horizon is how many stats windows ahead the forecast projects the
	// fitted p99 trend (0 means 3).
	Horizon int
	// Windows is how many complete stats windows the trajectory
	// regression looks back over (0 means 8).
	Windows int
	// Quantile is the forecast percentile (0 means 0.99).
	Quantile float64
	// TailFrac is the quantile of the output's own latency distribution
	// that a traced span must clear to count as tail-attribution evidence
	// (0 means 0.95).
	TailFrac float64
	// MinSamples is the minimum delivered-tuple count before the
	// forecaster trusts the sketch (0 means 64).
	MinSamples uint64
	// WindowNs sizes the private stats store created when Config.Stats is
	// nil (0 means 25 ms).
	WindowNs int64
}

func (c *SLOConfig) applyDefaults() {
	if c.CliffFrac <= 0 || c.CliffFrac > 1 {
		c.CliffFrac = 0.9
	}
	if c.Horizon <= 0 {
		c.Horizon = 3
	}
	if c.Windows <= 0 {
		c.Windows = 8
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.99
	}
	if c.TailFrac <= 0 || c.TailFrac >= 1 {
		c.TailFrac = 0.95
	}
	if c.MinSamples == 0 {
		c.MinSamples = 64
	}
}

// BoxShare is one contributor's slice of an output's tail latency: a box
// (queue + proc time) or a network link (net time), over the spans that
// cleared the tail cut.
type BoxShare struct {
	Name    string  `json:"name"`
	QueueNs int64   `json:"queue_ns"`
	ProcNs  int64   `json:"proc_ns"`
	NetNs   int64   `json:"net_ns"`
	Share   float64 `json:"share"` // fraction of the summed tail time
}

// Attribution decomposes an output's tail latency into its contributors,
// critical-path first.
type Attribution struct {
	Output   string     `json:"output"`
	Spans    uint64     `json:"spans"`    // tail spans the evidence covers
	TotalNs  int64      `json:"total_ns"` // summed attributed time
	Critical string     `json:"critical"` // largest contributor
	Shares   []BoxShare `json:"shares"`
}

// AttributeOutput ranks the contributors to the named output's tail
// latency from the traced spans that cleared its tail cut. ok is false
// when the output is unknown, the SLO plane is off, or no tail evidence
// has accumulated yet (tracing disabled or no deliveries).
func (e *Engine) AttributeOutput(name string) (Attribution, bool) {
	os, ok := e.outputs[name]
	if !ok || os.lat == nil {
		return Attribution{}, false
	}
	os.mu.Lock()
	defer os.mu.Unlock()
	if os.tailSpans == 0 || len(os.tails) == 0 {
		return Attribution{}, false
	}
	a := Attribution{Output: name, Spans: os.tailSpans}
	for n, agg := range os.tails {
		if n == name {
			// The span's Finish residual is charged to the output name
			// itself; it is delivery bookkeeping, not a box.
			continue
		}
		a.Shares = append(a.Shares, BoxShare{
			Name: n, QueueNs: agg.queue, ProcNs: agg.proc, NetNs: agg.net,
		})
		a.TotalNs += agg.queue + agg.proc + agg.net
	}
	if a.TotalNs <= 0 || len(a.Shares) == 0 {
		return Attribution{}, false
	}
	for i := range a.Shares {
		s := &a.Shares[i]
		s.Share = float64(s.QueueNs+s.ProcNs+s.NetNs) / float64(a.TotalNs)
	}
	sort.Slice(a.Shares, func(i, j int) bool {
		if a.Shares[i].Share != a.Shares[j].Share {
			return a.Shares[i].Share > a.Shares[j].Share
		}
		return a.Shares[i].Name < a.Shares[j].Name
	})
	a.Critical = a.Shares[0].Name
	return a, true
}

// LatencySketch returns a copy of the named output's cumulative
// delivered-latency sketch; ok is false when the output is unknown or
// the sketch plane is off.
func (e *Engine) LatencySketch(name string) (*sketch.Sketch, bool) {
	os, ok := e.outputs[name]
	if !ok || os.lat == nil {
		return nil, false
	}
	os.mu.Lock()
	defer os.mu.Unlock()
	return os.lat.Clone(), true
}

// LatencySketches returns copies of every output's cumulative latency
// sketch, keyed by output name; empty when the sketch plane is off.
func (e *Engine) LatencySketches() map[string]*sketch.Sketch {
	out := map[string]*sketch.Sketch{}
	for name, os := range e.outputs {
		if os.lat == nil {
			continue
		}
		os.mu.Lock()
		out[name] = os.lat.Clone()
		os.mu.Unlock()
	}
	return out
}

// SetBoxCost overrides the modeled per-tuple cost of a box (and its
// key-partition replicas) under a virtual clock — the experiment knob
// that injects a runtime slowdown. It reports whether the box exists.
// Like the serial control methods, it must not race a running Step loop
// on a wall clock; netsim experiments call it from the simulation
// thread.
func (e *Engine) SetBoxCost(id string, costNs int64) bool {
	if costNs <= 0 {
		return false
	}
	found := false
	for _, b := range e.snap().boxes {
		if b.id == id || b.parentID == id {
			b.virtCost = costNs
			found = true
		}
	}
	return found
}

// sloCheck runs the forecaster once per stats window per output: refresh
// the tail cut, publish the headroom gauge, fit the p99 trajectory, and
// journal an early warning (with chained bottleneck attribution) when
// the projection crosses the output's latency cliff.
func (e *Engine) sloCheck(now int64) {
	if e.slo == nil || e.stats == nil {
		return
	}
	idx := now / e.stats.WindowNs()
	for name, os := range e.outputs {
		if os.lat == nil {
			continue
		}
		os.mu.Lock()
		if os.sloIdx == idx {
			os.mu.Unlock()
			continue // at most one check per window
		}
		os.sloIdx = idx
		count := os.lat.Count()
		if count >= 16 {
			os.tailCut = os.lat.Quantile(e.slo.TailFrac)
		}
		os.decayTails()
		spec := os.spec
		warned, breached := os.warned, os.breached
		os.mu.Unlock()

		if spec == nil || spec.Latency == nil || count < e.slo.MinSamples {
			continue
		}
		cliff := spec.Latency.CriticalX(e.slo.CliffFrac)
		if cliff <= 0 {
			continue
		}
		series := stats.SeriesOutputLatency(name)
		ws, ok := e.stats.WindowedSketch(series, e.slo.Windows, now)
		if !ok {
			continue
		}
		p99 := ws.Quantile(e.slo.Quantile)
		headroom := (cliff - p99) / cliff
		if headroom < -1 {
			headroom = -1
		} else if headroom > 1 {
			headroom = 1
		}
		e.stats.Observe(stats.SeriesOutputHeadroom(name), stats.KindGauge, now, headroom)

		predicted := p99
		traj := e.stats.SketchTrajectory(series, e.slo.Windows, now)
		if len(traj) >= 2 {
			slope := trajSlope(traj, e.stats.WindowNs())
			predicted = traj[len(traj)-1].Value + slope*float64(e.slo.Horizon)
		}

		switch {
		case !warned && (predicted >= cliff || p99 >= cliff):
			e.sloWarn(name, now, p99, predicted, cliff)
			os.mu.Lock()
			os.warned = true
			os.breached = p99 >= cliff
			os.mu.Unlock()
		case warned && !breached && p99 >= cliff:
			// The forecast came true: the warn-time attribution ran on
			// early, possibly ambiguous tail evidence, so journal a
			// refreshed one now that the breach's spans dominate the
			// accumulators — the event an operator (and E20) trusts.
			e.sloBreach(name, now, p99, cliff)
			os.mu.Lock()
			os.breached = true
			os.mu.Unlock()
		case warned && p99 < 0.8*cliff && predicted < 0.8*cliff:
			// Hysteresis: re-arm only once the trajectory is clearly back
			// under the cliff, so a hovering p99 warns once, not per window.
			os.mu.Lock()
			os.warned = false
			os.breached = false
			os.mu.Unlock()
		}
	}
}

// trajSlope fits a least-squares line to the trajectory, returning the
// p99 change per window.
func trajSlope(pts []stats.Point, windowNs int64) float64 {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x := float64(p.Start / windowNs)
		sx += x
		sy += p.Value
		sxx += x * x
		sxy += x * p.Value
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// sloWarn journals the early warning and, when tail evidence exists, the
// bottleneck attribution chained on the same correlation id (the
// autosplit cause→effect journaling pattern), annotating the flight
// recorder so traces and journal join on one id.
func (e *Engine) sloWarn(name string, now int64, p99, predicted, cliff float64) {
	corr := e.journal.NewCorr()
	e.journal.Append(events.Event{
		Time: now, Kind: events.KindSLOWarn, Subject: name,
		Detail: "p99 trajectory crosses latency cliff",
		Corr:   corr, V1: p99, V2: cliff, V3: predicted,
	})
	if e.tracer != nil {
		e.tracer.AnnotateID(corr, "slo-warn "+name, now)
	}
	if attr, ok := e.AttributeOutput(name); ok {
		e.journal.Append(events.Event{
			Time: now, Kind: events.KindBottleneck, Subject: name,
			Detail: attr.Critical, Corr: corr,
			V1: attr.Shares[0].Share, V2: float64(attr.Spans),
			V3: float64(attr.TotalNs),
		})
		if e.tracer != nil {
			e.tracer.AnnotateID(corr, "bottleneck "+attr.Critical, now)
		}
	}
}

// sloBreach journals the refreshed bottleneck attribution once the
// forecast crossing actually happens. By now the tail accumulators are
// dominated by breach-era spans (decay halved away the calm history), so
// this attribution — unlike the warn-time one — names the contributor
// behind the observed breach.
func (e *Engine) sloBreach(name string, now int64, p99, cliff float64) {
	attr, ok := e.AttributeOutput(name)
	if !ok {
		return
	}
	corr := e.journal.NewCorr()
	e.journal.Append(events.Event{
		Time: now, Kind: events.KindBottleneck, Subject: name,
		Detail: attr.Critical, Corr: corr,
		V1: attr.Shares[0].Share, V2: float64(attr.Spans),
		V3: float64(attr.TotalNs),
	})
	if e.tracer != nil {
		e.tracer.AnnotateID(corr, "bottleneck "+attr.Critical, now)
	}
}
