package engine

// DefaultMaxTrain is the default upper bound on tuples pushed through a
// box in one scheduling decision.
const DefaultMaxTrain = 128

// Scheduler determines which box to run next and how many of the tuples
// waiting in front of it to process — the train-scheduling determination
// of §2.3. Next returns (nil, 0, 0) when no box has queued work.
type Scheduler interface {
	Next(e *Engine) (b *boxState, port int, train int)
}

// ParallelScheduler is a Scheduler that can restrict its choice to boxes
// the dispatcher marks as free — a box instance is owned by at most one
// worker at a time, so parallel dispatch asks the scheduler for the best
// train among the boxes nobody is currently running. free == nil means
// every box is eligible (the serial case); all built-in schedulers
// implement this, keeping the execution policy swappable between the
// serial and parallel paths.
type ParallelScheduler interface {
	Scheduler
	NextFree(e *Engine, free func(*boxState) bool) (b *boxState, port int, train int)
}

// RoundRobinScheduler visits boxes cyclically, processing at most Train
// tuples per visit. It is the per-tuple / small-batch baseline that train
// scheduling is measured against (experiment E02).
type RoundRobinScheduler struct {
	Train int
	pos   int
}

// NewRoundRobinScheduler returns a round-robin scheduler with the given
// train size (minimum 1).
func NewRoundRobinScheduler(train int) *RoundRobinScheduler {
	if train < 1 {
		train = 1
	}
	return &RoundRobinScheduler{Train: train}
}

// Next implements Scheduler.
func (s *RoundRobinScheduler) Next(e *Engine) (*boxState, int, int) {
	return s.NextFree(e, nil)
}

// NextFree implements ParallelScheduler.
func (s *RoundRobinScheduler) NextFree(e *Engine, free func(*boxState) bool) (*boxState, int, int) {
	topo := e.snap().boxes
	n := len(topo)
	for i := 0; i < n; i++ {
		b := topo[(s.pos+i)%n]
		if free != nil && !free(b) {
			continue
		}
		for p, q := range b.inQ {
			if q.Len() > 0 {
				s.pos = (s.pos + i + 1) % n
				return b, p, s.Train
			}
		}
	}
	return nil, 0, 0
}

// TrainScheduler picks the box input queue with the most waiting tuples
// and drains up to MaxTrain of them in one go — maximizing train length to
// amortize per-invocation overhead, the paper's train scheduling.
type TrainScheduler struct {
	MaxTrain int
}

// NewTrainScheduler returns a train scheduler with the given cap.
func NewTrainScheduler(maxTrain int) *TrainScheduler {
	if maxTrain < 1 {
		maxTrain = DefaultMaxTrain
	}
	return &TrainScheduler{MaxTrain: maxTrain}
}

// Next implements Scheduler.
func (s *TrainScheduler) Next(e *Engine) (*boxState, int, int) {
	return s.NextFree(e, nil)
}

// NextFree implements ParallelScheduler.
func (s *TrainScheduler) NextFree(e *Engine, free func(*boxState) bool) (*boxState, int, int) {
	var best *boxState
	bestPort, bestLen := 0, 0
	for _, b := range e.snap().boxes {
		if free != nil && !free(b) {
			continue
		}
		for p, q := range b.inQ {
			if n := q.Len(); n > bestLen {
				best, bestPort, bestLen = b, p, n
			}
		}
	}
	if best == nil {
		return nil, 0, 0
	}
	train := bestLen
	if train > s.MaxTrain {
		train = s.MaxTrain
	}
	return best, bestPort, train
}

// QoSScheduler prioritizes the box whose oldest waiting tuple is closest
// to violating its output latency budget: a QoS-aware discipline (§7.1
// "all Aurora resource allocation decisions ... are driven by QoS-aware
// algorithms"). Boxes whose outputs have no latency QoS fall back to
// longest-queue order.
type QoSScheduler struct {
	MaxTrain int
	// Budget is the latency (ns) the engine tries to beat; tuples older
	// than Budget*Pressure are urgent. Derived per output from QoS specs
	// by the caller (qos.Graph.CriticalX).
	Budget int64
}

// NewQoSScheduler returns a QoS-priority scheduler against the given
// end-to-end latency budget in nanoseconds.
func NewQoSScheduler(maxTrain int, budget int64) *QoSScheduler {
	if maxTrain < 1 {
		maxTrain = DefaultMaxTrain
	}
	if budget <= 0 {
		budget = 1e9
	}
	return &QoSScheduler{MaxTrain: maxTrain, Budget: budget}
}

// Next implements Scheduler.
func (s *QoSScheduler) Next(e *Engine) (*boxState, int, int) {
	return s.NextFree(e, nil)
}

// NextFree implements ParallelScheduler.
func (s *QoSScheduler) NextFree(e *Engine, free func(*boxState) bool) (*boxState, int, int) {
	now := e.clock.Now()
	var best *boxState
	bestPort := 0
	bestScore := -1.0
	for _, b := range e.snap().boxes {
		if free != nil && !free(b) {
			continue
		}
		for p, q := range b.inQ {
			n := q.Len()
			if n == 0 {
				continue
			}
			// Urgency: age of the oldest tuple relative to the budget,
			// weighted by queue length so bulk work still gets served.
			oldest, ok := q.OldestEnq()
			if !ok {
				continue
			}
			age := float64(now - oldest)
			score := age/float64(s.Budget) + 0.001*float64(n)
			if score > bestScore {
				best, bestPort, bestScore = b, p, score
			}
		}
	}
	if best == nil {
		return nil, 0, 0
	}
	train := best.inQ[bestPort].Len()
	if train > s.MaxTrain {
		train = s.MaxTrain
	}
	return best, bestPort, train
}
