// Package engine implements the single-node Aurora run-time architecture
// of §2.3 (Fig 3): a Router moving tuples between operator boxes, a
// Scheduler deciding which box to run and how many waiting tuples to push
// through it (train scheduling), a Storage Manager accounting for queue
// memory and spilling the excess, a QoS Monitor observing output latency
// and utility, and a Load Shedder discarding tuples when overload makes
// precise answers unachievable (§7.1).
//
// The engine runs under an explicit Clock so the same code executes in
// wall time (real deployments, cmd/auroranode) and in deterministic
// virtual time (netsim experiments, benchmarks).
package engine

import "time"

// Clock supplies the engine's notion of now, in nanoseconds.
type Clock interface {
	// Now returns the current time in nanoseconds.
	Now() int64
}

// WallClock reads the OS monotonic-ish clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// VirtualClock is a manually advanced clock for deterministic experiments.
// The engine advances it by the modeled cost of each box execution; the
// harness advances it across idle gaps.
type VirtualClock struct {
	now int64
}

// NewVirtualClock returns a virtual clock starting at start nanoseconds.
func NewVirtualClock(start int64) *VirtualClock { return &VirtualClock{now: start} }

// Now implements Clock.
func (v *VirtualClock) Now() int64 { return v.now }

// Advance moves the clock forward by d nanoseconds (negative d is ignored).
func (v *VirtualClock) Advance(d int64) {
	if d > 0 {
		v.now += d
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (v *VirtualClock) AdvanceTo(t int64) {
	if t > v.now {
		v.now = t
	}
}
