package engine

import (
	"testing"
)

// The entryQueue used to grow forever: a one-off burst pinned its peak
// ring for the rest of the process lifetime. These are the regression
// tests for the shrink-on-Pop fix and for the byte accounting that the
// storage manager's pressure signal is computed from.

func TestEntryQueueFIFOAndBytes(t *testing.T) {
	q := newEntryQueue()
	wantBytes := 0
	for i := 0; i < 100; i++ {
		tp := tuple(int64(i), int64(i*2))
		wantBytes += tp.MemSize()
		q.Push(tp, int64(i))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Bytes() != wantBytes {
		t.Fatalf("Bytes = %d, want %d", q.Bytes(), wantBytes)
	}
	if enq, ok := q.OldestEnq(); !ok || enq != 0 {
		t.Fatalf("OldestEnq = %d, %v", enq, ok)
	}
	for i := 0; i < 100; i++ {
		en, ok := q.Pop()
		if !ok {
			t.Fatalf("Pop %d failed", i)
		}
		if got := en.t.Field(0).AsInt(); got != int64(i) {
			t.Fatalf("Pop %d: A = %d (FIFO violated)", i, got)
		}
		wantBytes -= en.t.MemSize()
		if q.Bytes() != wantBytes {
			t.Fatalf("after pop %d: Bytes = %d, want %d", i, q.Bytes(), wantBytes)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
	if q.Bytes() != 0 || q.Len() != 0 {
		t.Fatalf("drained queue: Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
}

func TestEntryQueueShrinksAfterBurst(t *testing.T) {
	q := newEntryQueue()
	const burst = 4096
	for i := 0; i < burst; i++ {
		q.Push(tuple(1, int64(i)), 0)
	}
	peak := q.Cap()
	if peak < burst {
		t.Fatalf("Cap = %d after %d pushes", peak, burst)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	if c := q.Cap(); c != minQueueCap {
		t.Errorf("Cap after drain = %d, want %d (peak was %d)", c, minQueueCap, peak)
	}
	// The ring must stay correct across shrink: refill past the small cap
	// and check order survives the regrow.
	for i := 0; i < 20; i++ {
		q.Push(tuple(int64(i), 0), 0)
	}
	for i := 0; i < 20; i++ {
		en, ok := q.Pop()
		if !ok || en.t.Field(0).AsInt() != int64(i) {
			t.Fatalf("post-shrink FIFO broken at %d (ok=%v)", i, ok)
		}
	}
}

func TestEntryQueueShrinkKeepsSteadyOccupancy(t *testing.T) {
	// A queue hovering at moderate depth must not thrash: shrink only
	// fires below quarter occupancy, so capacity tracks the working set.
	q := newEntryQueue()
	for i := 0; i < 1000; i++ {
		q.Push(tuple(1, int64(i)), 0)
		q.Push(tuple(2, int64(i)), 0)
		q.Pop()
	}
	if q.Len() != 1000 {
		t.Fatalf("Len = %d", q.Len())
	}
	if c := q.Cap(); c < q.Len() || c > 4*q.Len() {
		t.Errorf("Cap = %d for occupancy %d", c, q.Len())
	}
}

func TestEngineQueuedBytesReturnsToZero(t *testing.T) {
	// Engine-level byte accounting regression: qBytes is maintained
	// atomically at push/pop across both execution paths and must return
	// to zero when the network drains.
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	for i := 0; i < 200; i++ {
		e.Ingest("in", tuple(int64(i%3), int64(i)))
	}
	if e.QueuedBytes() == 0 {
		t.Fatal("queued bytes should be nonzero before running")
	}
	e.Drain()
	if got := e.QueuedBytes(); got != 0 {
		t.Errorf("QueuedBytes after drain = %d, want 0", got)
	}
	if e.QueuedTuples() != 0 {
		t.Errorf("QueuedTuples after drain = %d", e.QueuedTuples())
	}
}
