package engine

import (
	"os"
	"testing"

	"repro/internal/events"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/trace"
)

// sloNet is one filter with a latency QoS spec: utility 1 up to 2 ms,
// falling to 0 at 20 ms. CliffFrac 0.9 puts the cliff at 3.8 ms.
func sloNet(t *testing.T) *query.Network {
	t.Helper()
	spec := &qos.Spec{Latency: qos.DefaultLatency(2e6, 2e7)}
	n, err := query.NewBuilder("slo").
		AddBox("f", filterSpec("B < 100")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, spec).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// ingestAt pushes one tuple whose delivered latency will be ~lat ns by
// backdating its TS against the virtual clock.
func ingestAt(e *Engine, vc *VirtualClock, lat int64) {
	tp := tuple(1, 5)
	tp.TS = vc.Now() - lat
	e.Ingest("in", tp)
	e.RunUntilIdle(0)
}

func TestLatencySketchRecordsDeliveries(t *testing.T) {
	st := stats.NewStore(1e6, 16)
	e, vc := newVirtualEngine(t, sloNet(t), Config{Stats: st, SLO: &SLOConfig{}})
	for i := 0; i < 50; i++ {
		ingestAt(e, vc, 1e6)
	}
	sk, ok := e.LatencySketch("out")
	if !ok {
		t.Fatal("no latency sketch with the SLO plane configured")
	}
	if sk.Count() != 50 {
		t.Fatalf("sketch count %d, want 50", sk.Count())
	}
	p := sk.Quantile(0.5)
	if p < 0.98e6 || p > 1.02e6 {
		t.Fatalf("sketch median %v, want ~1e6", p)
	}
	// SampleStats publishes the cumulative sketch into the store; after a
	// window boundary the store's copy matches.
	e.SampleStats(vc.Now())
	vc.Advance(2e6)
	e.SampleStats(vc.Now())
	cum, ok := st.CumulativeSketch(stats.SeriesOutputLatency("out"))
	if !ok || cum.Count() != 50 {
		t.Fatalf("store cumulative sketch: ok=%v count=%v", ok, cum)
	}
}

// TestSLOForecastWarnsBeforeBreach drives a steadily climbing latency
// ramp and requires the forecaster to journal its warning while the
// observed p99 is still below the cliff — the early-warning property —
// with the bottleneck attribution chained on the same correlation id.
func TestSLOForecastWarnsBeforeBreach(t *testing.T) {
	j := events.NewJournal("n1", 256)
	e, vc := newVirtualEngine(t, sloNet(t), Config{
		Stats:   stats.NewStore(1e6, 32),
		Tracer:  trace.NewTracer("n1", 1, trace.NewRecorder(1024)),
		Journal: j,
		SLO:     &SLOConfig{MinSamples: 32},
	})
	const cliff = 3.8e6 // CriticalX(0.9) of DefaultLatency(2e6, 2e7)

	// Latency climbs 0.35 ms per 1 ms window from a 1 ms base: it crosses
	// the cliff around window 8, so a 3-window-ahead forecast has room to
	// fire first.
	for w := 0; w < 14; w++ {
		lat := int64(1e6 + float64(w)*0.35e6)
		for i := 0; i < 60; i++ {
			ingestAt(e, vc, lat)
			vc.Advance(15_000)
		}
		// Sample near the window's end so this window's deltas land in it.
		e.SampleStats(vc.Now())
		vc.Advance(1e6 - vc.Now()%1e6)
	}

	var warn, bott *events.Event
	for _, ev := range j.Tail(256) {
		ev := ev
		if ev.Kind == events.KindSLOWarn && warn == nil {
			warn = &ev
		}
		if ev.Kind == events.KindBottleneck && bott == nil {
			bott = &ev
		}
	}
	if warn == nil {
		t.Fatal("forecaster never journaled an SLO warning")
	}
	if warn.V1 >= cliff {
		t.Errorf("warning fired at p99=%.0f, already past the cliff %.0f — not early", warn.V1, cliff)
	}
	if warn.V2 < cliff*0.99 || warn.V2 > cliff*1.01 {
		t.Errorf("warning cliff V2=%.0f, want ~%.0f", warn.V2, cliff)
	}
	if warn.V3 < cliff {
		t.Errorf("warning predicted V3=%.0f below the cliff — what triggered it?", warn.V3)
	}
	if bott == nil {
		t.Fatal("no bottleneck attribution accompanied the warning")
	}
	if warn.Corr == 0 || bott.Corr != warn.Corr {
		t.Errorf("correlation chain broken: warn corr %d, bottleneck corr %d", warn.Corr, bott.Corr)
	}
	if warn.Seq >= bott.Seq {
		t.Errorf("cause/effect order inverted: warn seq %d, bottleneck seq %d", warn.Seq, bott.Seq)
	}
	if bott.Detail != "f" {
		t.Errorf("bottleneck named %q, want the only box %q", bott.Detail, "f")
	}

	// The headroom gauge went negative territory-bound as p99 climbed.
	h, ok := e.StatsStore().Latest(stats.SeriesOutputHeadroom("out"), vc.Now())
	if !ok {
		t.Fatal("no headroom series published")
	}
	if h > 0.2 {
		t.Errorf("headroom %v after the ramp, expected shrunken or negative", h)
	}
}

// TestSLOWarnHysteresis: a p99 hovering at the cliff must warn once, and
// re-arm only after the trajectory drops clearly below it.
func TestSLOWarnHysteresis(t *testing.T) {
	j := events.NewJournal("n1", 256)
	e, vc := newVirtualEngine(t, sloNet(t), Config{
		Stats:   stats.NewStore(1e6, 32),
		Journal: j,
		SLO:     &SLOConfig{MinSamples: 32},
	})
	countWarns := func() int {
		n := 0
		for _, ev := range j.Tail(256) {
			if ev.Kind == events.KindSLOWarn {
				n++
			}
		}
		return n
	}
	window := func(lat int64) {
		for i := 0; i < 60; i++ {
			ingestAt(e, vc, lat)
			vc.Advance(15_000)
		}
		e.SampleStats(vc.Now())
		vc.Advance(1e6 - vc.Now()%1e6)
	}
	for w := 0; w < 8; w++ {
		window(5e6) // past the 3.8 ms cliff every window
	}
	if n := countWarns(); n != 1 {
		t.Fatalf("hovering past the cliff produced %d warnings, want exactly 1", n)
	}
	for w := 0; w < 10; w++ {
		window(1e6) // well below 80%% of the cliff: re-arms
	}
	for w := 0; w < 8; w++ {
		window(5e6)
	}
	if n := countWarns(); n != 2 {
		t.Fatalf("after recovery and second breach, %d warnings, want 2", n)
	}
}

// TestAttributeOutputNamesCriticalBox: with one cheap and one expensive
// box in a chain, tail attribution must rank the expensive box first.
func TestAttributeOutputNamesCriticalBox(t *testing.T) {
	n, err := query.NewBuilder("two").
		AddBox("cheap", filterSpec("B < 100")).
		AddBox("costly", filterSpec("B < 200")).
		Connect("cheap", "costly").
		BindInput("in", tSchema, "cheap", 0).
		BindOutput("out", "costly", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newVirtualEngine(t, n, Config{
		Tracer:   trace.NewTracer("n1", 1, nil),
		Stats:    stats.NewStore(1e6, 16),
		SLO:      &SLOConfig{},
		BoxCosts: map[string]int64{"cheap": 1000, "costly": 60_000},
	})
	for i := 0; i < 40; i++ {
		e.Ingest("in", tuple(int64(i), 5))
		e.RunUntilIdle(0)
	}
	attr, ok := e.AttributeOutput("out")
	if !ok {
		t.Fatal("no attribution despite traced deliveries")
	}
	if attr.Critical != "costly" {
		t.Fatalf("critical box %q, want %q (shares %+v)", attr.Critical, "costly", attr.Shares)
	}
	if attr.Shares[0].Share <= 0.5 {
		t.Errorf("dominant box share %v, want > 0.5", attr.Shares[0].Share)
	}
	if attr.Spans == 0 || attr.TotalNs == 0 {
		t.Errorf("empty evidence: %+v", attr)
	}
}

// TestSetBoxCost: the runtime cost override reaches the box — the
// modeled work per tuple becomes the new cost (the E20 slowdown knob).
func TestSetBoxCost(t *testing.T) {
	e, _ := newVirtualEngine(t, filterNet(t), Config{Stats: stats.NewStore(1e6, 16)})
	if e.SetBoxCost("nope", 5000) {
		t.Error("SetBoxCost accepted an unknown box")
	}
	if e.SetBoxCost("f", 0) {
		t.Error("SetBoxCost accepted a non-positive cost")
	}
	if !e.SetBoxCost("f", 50_000) {
		t.Fatal("SetBoxCost rejected a real box")
	}
	for i := 0; i < 10; i++ {
		e.Ingest("in", tuple(int64(i), 5))
		e.RunUntilIdle(0)
	}
	if got := e.BusyNs(); got != 10*50_000 {
		t.Fatalf("busy time %d ns after 10 tuples at 50k ns, want 500000", got)
	}
}

// benchSLOEngine builds the guard fixture: a QoS-spec'd filter chain on
// a virtual clock, with the full latency-SLO plane either off or on.
func benchSLOEngine(b *testing.B, on bool) *Engine {
	b.Helper()
	spec := &qos.Spec{Latency: qos.DefaultLatency(2e6, 2e7)}
	n, err := query.NewBuilder("slo").
		AddBox("f", filterSpec("B < 100")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, spec).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	// Both sides run the pre-existing observability stack (stats plane,
	// sampled tracing, journal) so the comparison isolates what the SLO
	// plane itself adds: the per-delivery sketch record, tail folding of
	// traced spans, and the once-per-window publish + forecast.
	cfg := Config{
		Clock:      NewVirtualClock(1),
		Stats:      stats.NewStore(25e6, 16),
		StatsEvery: 64,
		Tracer:     trace.NewTracer("bench", 8, trace.NewRecorder(1024)),
		Journal:    events.NewJournal("bench", 256),
	}
	if on {
		cfg.SLO = &SLOConfig{}
	}
	e, err := New(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchSLOIngestStep(b *testing.B, on bool) {
	e := benchSLOEngine(b, on)
	tp := tuple(1, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest("in", tp)
		e.Step()
	}
}

func BenchmarkEngineSLOOff(b *testing.B) { benchSLOIngestStep(b, false) }
func BenchmarkEngineSLOOn(b *testing.B)  { benchSLOIngestStep(b, true) }

// TestLatencyOverheadGuard is the CI fence for the latency-SLO plane:
// enabling it on an already-observable engine (stats + sampled tracing +
// journal) must cost at most 5%, best of 3 alternating runs. Gated
// behind CI_LATENCY_GUARD=1 — timing comparisons are too noisy for
// default test runs.
func TestLatencyOverheadGuard(t *testing.T) {
	if os.Getenv("CI_LATENCY_GUARD") != "1" {
		t.Skip("set CI_LATENCY_GUARD=1 to run the latency-SLO overhead guard")
	}
	// One discarded warmup pair (page cache, branch predictors, CPU
	// governor), then alternating off/on pairs so clock drift and thermal
	// state hit both configurations equally; best-of-5 damps scheduler
	// noise — on a busy single-CPU host a single slow round otherwise
	// dominates the comparison.
	testing.Benchmark(BenchmarkEngineSLOOff)
	testing.Benchmark(BenchmarkEngineSLOOn)
	offNs, onNs := 0.0, 0.0
	for i := 0; i < 5; i++ {
		off := float64(testing.Benchmark(BenchmarkEngineSLOOff).NsPerOp())
		on := float64(testing.Benchmark(BenchmarkEngineSLOOn).NsPerOp())
		if offNs == 0 || off < offNs {
			offNs = off
		}
		if onNs == 0 || on < onNs {
			onNs = on
		}
	}
	t.Logf("SLO plane off: %.0f ns/op, on: %.0f ns/op (%.1f%% overhead)",
		offNs, onNs, (onNs/offNs-1)*100)
	if onNs > offNs*1.05 {
		t.Fatalf("latency-SLO plane costs %.1f%% (> 5%%): off %.0f ns/op, on %.0f ns/op",
			(onNs/offNs-1)*100, offNs, onNs)
	}
}
