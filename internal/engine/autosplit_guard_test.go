package engine

import (
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
)

// hotAggNet is one chain whose windowed aggregate burns almost all the
// CPU: a cheap pass-all filter feeding a tumble whose `on` expression is
// deeply nested arithmetic. A worker pool alone cannot parallelize the
// single hot box; only a key-sharded split can.
func hotAggNet(t *testing.T, depth int) *query.Network {
	t.Helper()
	expr := "B"
	for i := 0; i < depth; i++ {
		expr = "(((" + expr + " * 3) + 7) % 100003)"
	}
	n, err := query.NewBuilder("hotagg").
		AddBox("f", filterSpec("B < 1000000")).
		AddBox("hot", op.Spec{Kind: "tumble", Params: map[string]string{
			"agg": "sum", "on": expr, "groupby": "A"}}).
		Connect("f", "hot").
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "hot", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// zipfTrain draws burst keys from a Zipf distribution so hot keys
// dominate — the skew regime E18b measures.
func zipfTrain(n int, seed int64) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.15, 1, 255)
	out := make([]stream.Tuple, 0, n)
	for len(out) < n {
		k := int64(z.Uint64())
		for j := 0; j < 8 && len(out) < n; j++ {
			out = append(out, tuple(k, rng.Int63n(1000)))
		}
	}
	return out
}

// TestAutoSplitSpeedupGuard is the CI throughput gate for the runtime
// split: 4 workers with the autosplit controller must beat 4 workers
// without it by >= 2x on the Zipf hot-aggregate workload. Env-gated like
// the other guards, and skipped below 4 CPUs where the comparison would
// measure only context switching.
func TestAutoSplitSpeedupGuard(t *testing.T) {
	if os.Getenv("CI_AUTOSPLIT_GUARD") == "" {
		t.Skip("set CI_AUTOSPLIT_GUARD=1 to run the autosplit speedup guard")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for the speedup guard, have %d", runtime.GOMAXPROCS(0))
	}
	const per = 120_000
	in := zipfTrain(per, 42)
	run := func(auto bool) (time.Duration, uint64) {
		cfg := Config{Workers: 4}
		if auto {
			cfg.StatsEvery = 4
			cfg.AutoSplit = &AutoSplitConfig{
				Replicas: 4, WindowNs: 2e6, CheckEvery: 1, HoldHot: 1, HoldCool: 50,
				Hot: stats.HotSpec{WorkFrac: 0.2, CoolFrac: 0.05, MinQueue: 4, Windows: 1},
			}
		}
		e := newWallEngine(t, hotAggNet(t, 40), cfg)
		for _, tp := range in {
			e.Ingest("in", tp)
		}
		start := time.Now()
		e.Run()
		e.Drain()
		splits, _ := e.SplitCounts()
		return time.Since(start), splits
	}
	best := func(auto bool) (time.Duration, uint64) {
		d, s := run(auto)
		if d2, s2 := run(auto); d2 < d {
			d, s = d2, s2
		}
		return d, s
	}
	plain, _ := best(false)
	split, splits := best(true)
	if splits == 0 {
		t.Fatal("autosplit never fired; the guard measured nothing")
	}
	speedup := float64(plain) / float64(split)
	t.Logf("4 workers %v, +autosplit %v (splits=%d), speedup %.2fx", plain, split, splits, speedup)
	if speedup < 2.0 {
		t.Errorf("autosplit speedup %.2fx < 2x (plain %v, split %v)", speedup, plain, split)
	}
}
