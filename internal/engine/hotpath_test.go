package engine

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// This file pins the batched train path's two load-bearing claims: the
// steady-state filter->map train body allocates nothing (pooled train
// buffers, pooled emission buffers, pooled Vals), and the batched kernels
// beat the per-tuple SerialKernels baseline by a wide margin on the E18
// workload shape. The speedup half runs under CI_HOTPATH_GUARD (ci.sh);
// the allocation half is deterministic and runs everywhere.

// hotChainNet is the E18/E21 workload shape: filter -> map -> tumble per
// chain, each chain with its own input and output.
func hotChainNet(t testing.TB, chains int) *query.Network {
	t.Helper()
	b := query.NewBuilder("hot")
	for i := 0; i < chains; i++ {
		f, m, tb := fmt.Sprintf("f%d", i), fmt.Sprintf("m%d", i), fmt.Sprintf("tb%d", i)
		b.AddBox(f, filterSpec("B < 95")).
			AddBox(m, op.Spec{Kind: "map", Params: map[string]string{
				"exprs": "A=A; B=((B * 3) + (A % 7))"}}).
			AddBox(tb, op.Spec{Kind: "tumble", Params: map[string]string{
				"agg": "sum", "on": "B", "groupby": "A"}}).
			Connect(f, m).
			Connect(m, tb).
			BindInput(fmt.Sprintf("in%d", i), tSchema, f, 0).
			BindOutput(fmt.Sprintf("out%d", i), tb, 0, nil)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTrainPathZeroAlloc is the deterministic half of the hot-path guard:
// after warm-up (ring capacities grown, pools primed), pushing a full
// train through filter -> map and draining it to the output must not
// allocate — the train buffer, the emission buffer, and the map's output
// Vals all come from pools, and the terminal delivery recycles the Vals.
func TestTrainPathZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector; alloc counts are not meaningful")
	}
	n, err := query.NewBuilder("za").
		AddBox("f", filterSpec("B < 1000000")).
		AddBox("m", op.Spec{Kind: "map", Params: map[string]string{
			"exprs": "A=A; B=(B + 1)"}}).
		Connect("f", "m").
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "m", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e := newWallEngine(t, n, Config{})
	in := make([]stream.Tuple, DefaultMaxTrain)
	for i := range in {
		in[i] = stream.Tuple{Seq: uint64(i + 1), TS: int64(i + 1),
			Vals: []stream.Value{stream.Int(int64(i % 7)), stream.Int(int64(i))}}
	}
	feed := func() {
		for i := range in {
			e.Ingest("in", in[i])
		}
		e.RunUntilIdle(0)
	}
	// Warm-up: grow queue rings, prime the train/emission/Vals pools.
	for i := 0; i < 4; i++ {
		feed()
	}
	if avg := testing.AllocsPerRun(50, feed); avg != 0 {
		t.Fatalf("steady-state train path allocates %.2f per %d-tuple train, want 0", avg, DefaultMaxTrain)
	}
}

// TestHotPathSpeedupGuard is the CI gate for the tentpole: the batched
// kernels must beat the SerialKernels per-tuple baseline by >= 1.8x on
// the E18 chain shape, best of five alternating rounds. Ingest happens
// outside the timed region in both modes (the ingest path is identical,
// so timing it would only dilute the train-path comparison).
func TestHotPathSpeedupGuard(t *testing.T) {
	if os.Getenv("CI_HOTPATH_GUARD") == "" {
		t.Skip("set CI_HOTPATH_GUARD=1 to run the hot-path speedup guard")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for the speedup guard, have %d", runtime.GOMAXPROCS(0))
	}
	const chains, per = 4, 100_000
	in := make([][]stream.Tuple, chains)
	for i := range in {
		in[i] = recurringTuples(int64(100+i), per)
	}
	run := func(serial bool) time.Duration {
		e := newWallEngine(t, hotChainNet(t, chains), Config{SerialKernels: serial})
		for j := 0; j < per; j++ {
			for i := 0; i < chains; i++ {
				e.Ingest(fmt.Sprintf("in%d", i), in[i][j])
			}
		}
		start := time.Now()
		e.Run()
		e.Drain()
		return time.Since(start)
	}
	best := func(serial bool, d time.Duration) time.Duration {
		if d2 := run(serial); d == 0 || d2 < d {
			return d2
		}
		return d
	}
	var serial, batched time.Duration
	for round := 0; round < 5; round++ {
		serial = best(true, serial)
		batched = best(false, batched)
	}
	speedup := float64(serial) / float64(batched)
	t.Logf("serial-kernel %v, batched %v, speedup %.2fx", serial, batched, speedup)
	if speedup < 1.8 {
		t.Errorf("batched train path %.2fx over serial kernels, want >= 1.8x (serial %v, batched %v)",
			speedup, serial, batched)
	}
}

// TestSplitPooledEquivalence drains the same input through the pooled
// wall-clock batch path serially and with the middle box split N ways,
// with a Map (an op.Consumer whose inputs are recycled post-train and
// whose emissions carry pool-owned Vals) inside the chain. The output
// multisets must match — the ci.sh split battery runs this under -race,
// so a recycled-too-early buffer shows up as a data race or a value
// mismatch here.
func TestSplitPooledEquivalence(t *testing.T) {
	build := func() *query.Network {
		n, err := query.NewBuilder("splitpool").
			AddBox("m", op.Spec{Kind: "map", Params: map[string]string{
				"exprs": "A=A; B=((B * 3) + (A % 7))"}}).
			AddBox("f", filterSpec("B >= 0")).
			Connect("m", "f").
			BindInput("in", tSchema, "m", 0).
			BindOutput("out", "f", 0, nil).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	in := recurringTuples(7, 4000)

	ref := newWallEngine(t, build(), Config{})
	refOut := collectOutputs(ref)
	ingestAll(ref, in)
	ref.Drain()
	if len(*refOut) != len(in) {
		t.Fatalf("reference delivered %d of %d", len(*refOut), len(in))
	}

	for _, k := range []int{2, 3, 4} {
		sp := newWallEngine(t, build(), Config{})
		spOut := collectOutputs(sp)
		if err := sp.SplitBox("m", k); err != nil {
			t.Fatal(err)
		}
		ingestAll(sp, in)
		sp.Drain()
		if !sameMultiset(*refOut, *spOut) {
			t.Fatalf("split-%d map over pooled path diverged from serial (%d vs %d tuples)",
				k, len(*refOut), len(*spOut))
		}
	}
}

// TestAdHocTapRegistrationLinear pins the amortized-doubling tap publish:
// registering N taps must copy O(N) existing elements in total, not the
// O(N^2) of the old rebuild-per-attach scheme.
func TestAdHocTapRegistrationLinear(t *testing.T) {
	n, err := query.NewBuilder("taps").
		AddBox("f", filterSpec("B >= 0")).
		AddBox("g", filterSpec("B >= 0")).
		ConnectPorts(query.Port{Box: "f"}, query.Port{Box: "g"}, true).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "g", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e := newWallEngine(t, n, Config{})
	cps := e.ConnectionPoints()
	if len(cps) != 1 {
		t.Fatalf("expected 1 connection point, got %d", len(cps))
	}
	const taps = 1024
	for i := 0; i < taps; i++ {
		if _, err := e.AttachAdHoc(cps[0], func(stream.Tuple) {}); err != nil {
			t.Fatal(err)
		}
	}
	copies := e.TapCopies()
	// Amortized doubling copies each element O(1) times overall: total
	// copies stay under 2N. The quadratic scheme copied ~N^2/2 = 524k.
	if copies > 2*taps {
		t.Fatalf("registering %d taps copied %d elements, want <= %d (linear bound)",
			taps, copies, 2*taps)
	}
	// The taps must all actually be live: one tuple through the box fans
	// out to every registered tap.
	got := 0
	if _, err := e.AttachAdHoc(cps[0], func(stream.Tuple) { got++ }); err != nil {
		t.Fatal(err)
	}
	e.Ingest("in", tuple(1, 2))
	e.RunUntilIdle(0)
	if got != 1 {
		t.Fatalf("last tap saw %d tuples, want 1", got)
	}
}
