package engine

import "sync/atomic"

// Storage is the Storage Manager of Fig 3: it accounts for queue memory —
// box input queues and connection-point history, the state §2.3 says
// dominates memory — against a budget, and tracks how much has gone (or
// would go) beyond it. The disk half lives in internal/storage: when a
// connection point carries a spill, bytes past the budget land in segment
// files; without one, the spill is modeled (counted) only.
//
// All accounting is atomic: in parallel mode every worker's deliveries
// note their enqueues concurrently.
type Storage struct {
	budget       int
	highWater    atomic.Int64 // all-time high-water mark
	winHigh      atomic.Int64 // high-water mark since the last window reset
	lastTotal    atomic.Int64 // most recent total seen by NoteEnqueue
	spilledBytes atomic.Int64
	spillEvents  atomic.Int64
}

// NewStorage returns a storage manager with the given memory budget in
// bytes (0 means 64 MiB).
func NewStorage(budget int) *Storage {
	if budget <= 0 {
		budget = 64 << 20
	}
	return &Storage{budget: budget}
}

// NoteEnqueue records an enqueue of size bytes with the queues at
// totalBytes afterwards, updating spill accounting.
func (s *Storage) NoteEnqueue(size, totalBytes int) {
	s.lastTotal.Store(int64(totalBytes))
	noteMax(&s.highWater, int64(totalBytes))
	noteMax(&s.winHigh, int64(totalBytes))
	if totalBytes > s.budget {
		s.spilledBytes.Add(int64(size))
		s.spillEvents.Add(1)
	}
}

func noteMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Budget returns the memory budget in bytes.
func (s *Storage) Budget() int { return s.budget }

// HighWater returns the largest total queue footprint ever observed.
func (s *Storage) HighWater() int { return int(s.highWater.Load()) }

// SpilledBytes returns the cumulative bytes enqueued beyond the budget —
// bytes that a disk-backed store writes (or, without one, would write).
func (s *Storage) SpilledBytes() int64 { return s.spilledBytes.Load() }

// SpillEvents returns how many enqueues landed beyond the budget.
func (s *Storage) SpillEvents() int64 { return s.spillEvents.Load() }

// Pressure returns the ratio of the all-time high-water mark to the
// budget. It latches: one transient burst reports "paging" forever, which
// is the right summary for a whole experiment run but the wrong signal
// for runtime control — load management and telemetry read
// PressureWindow instead.
func (s *Storage) Pressure() float64 {
	return float64(s.highWater.Load()) / float64(s.budget)
}

// PressureWindow returns the ratio of the high-water mark since the last
// ResetPressureWindow to the budget — a burst shows for the windows it
// spans and then decays, unlike the latched all-time Pressure.
func (s *Storage) PressureWindow() float64 {
	return float64(s.winHigh.Load()) / float64(s.budget)
}

// ResetPressureWindow starts a new pressure window, seeded with the most
// recent observed total (not zero: a standing backlog keeps reporting
// until it actually drains). The stats sampler calls this once per
// window after reading PressureWindow.
func (s *Storage) ResetPressureWindow() {
	s.winHigh.Store(s.lastTotal.Load())
}
