package engine

import "sync/atomic"

// Storage is the Storage Manager of Fig 3: it buffers queues when main
// memory runs out, which matters most for connection-point queues that can
// grow quite long (§2.3). This reproduction models the spill rather than
// writing to disk: tuples above the memory budget are counted as spilled,
// the high-water mark is tracked, and experiments read the pressure ratio
// to decide when reconfiguration or shedding is warranted.
//
// All accounting is atomic: in parallel mode every worker's deliveries
// note their enqueues concurrently.
type Storage struct {
	budget       int
	highWater    atomic.Int64
	spilledBytes atomic.Int64
	spillEvents  atomic.Int64
}

// NewStorage returns a storage manager with the given memory budget in
// bytes (0 means 64 MiB).
func NewStorage(budget int) *Storage {
	if budget <= 0 {
		budget = 64 << 20
	}
	return &Storage{budget: budget}
}

// NoteEnqueue records an enqueue of size bytes with the queues at
// totalBytes afterwards, updating spill accounting.
func (s *Storage) NoteEnqueue(size, totalBytes int) {
	for {
		hw := s.highWater.Load()
		if int64(totalBytes) <= hw || s.highWater.CompareAndSwap(hw, int64(totalBytes)) {
			break
		}
	}
	if totalBytes > s.budget {
		s.spilledBytes.Add(int64(size))
		s.spillEvents.Add(1)
	}
}

// Budget returns the memory budget in bytes.
func (s *Storage) Budget() int { return s.budget }

// HighWater returns the largest total queue footprint observed.
func (s *Storage) HighWater() int { return int(s.highWater.Load()) }

// SpilledBytes returns the cumulative bytes enqueued beyond the budget —
// bytes that a disk-backed store would have written.
func (s *Storage) SpilledBytes() int64 { return s.spilledBytes.Load() }

// SpillEvents returns how many enqueues landed beyond the budget.
func (s *Storage) SpillEvents() int64 { return s.spillEvents.Load() }

// Pressure returns the ratio of the high-water mark to the budget;
// values above 1 mean the node has been paging queues.
func (s *Storage) Pressure() float64 {
	return float64(s.highWater.Load()) / float64(s.budget)
}
