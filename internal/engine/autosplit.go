package engine

import (
	"sync"

	"repro/internal/events"
	"repro/internal/op"
	"repro/internal/stats"
)

// AutoSplitConfig tunes the runtime hot-box controller (§5.2's "shifting
// boxes around" turned into intra-node, intra-operator parallelism): the
// engine watches the stats plane for a box burning a disproportionate
// share of a core behind a standing backlog, splits it into key-sharded
// replicas so the worker pool can spread its load, and folds it back
// when the load subsides. Zero fields take defaults.
type AutoSplitConfig struct {
	// Replicas is how many shards a split creates. 0 means the worker
	// pool size (minimum 2).
	Replicas int
	// Hot holds the detection thresholds; zero fields get the
	// stats.HotSpec defaults.
	Hot stats.HotSpec
	// CheckEvery evaluates the controller every N stats samples; 0 or 1
	// means every sample.
	CheckEvery int
	// HoldHot is how many consecutive hot verdicts a box must collect
	// before it is split, and HoldCool how many consecutive cool
	// verdicts before an active split folds back — the dwell hysteresis
	// that keeps oscillating load from flapping the topology ("shifting
	// boxes around too frequently could lead to instability", §5.2).
	// Zero means 2 and 4 respectively.
	HoldHot  int
	HoldCool int
	// WindowNs sizes the private stats store the engine creates when
	// Config.Stats is nil (0 means 25 ms windows). Ignored when a shared
	// store is configured.
	WindowNs int64
}

// autoSplit is the controller state: dwell counters per candidate, the
// currently split box (one split at a time — the simplest stable
// policy), and the precomputed set of boxes whose operators declared a
// split contract.
type autoSplit struct {
	cfg AutoSplitConfig

	mu       sync.Mutex
	checks   uint64
	hot      map[string]int // consecutive hot verdicts per eligible box
	cool     int            // consecutive cool verdicts for the active split
	target   string         // box split (or requested) by this controller
	eligible []string
}

func newAutoSplit(e *Engine, cfg AutoSplitConfig) *autoSplit {
	if cfg.Replicas < 2 {
		cfg.Replicas = e.workers
		if cfg.Replicas < 2 {
			cfg.Replicas = 2
		}
	}
	cfg.Hot = cfg.Hot.WithDefaults()
	if cfg.HoldHot <= 0 {
		cfg.HoldHot = 2
	}
	if cfg.HoldCool <= 0 {
		cfg.HoldCool = 4
	}
	a := &autoSplit{cfg: cfg, hot: map[string]int{}}
	// Eligibility is a static property of the spec (op.Splitter), so
	// compute it once instead of re-probing every check.
	for _, id := range e.net.Boxes() {
		if _, err := op.SplitProfileFor(e.net.Box(id).Spec); err == nil {
			a.eligible = append(a.eligible, id)
		}
	}
	return a
}

// autosplitCheck is the hot-box control loop, invoked at stats-sample
// boundaries on both execution paths (Step and runTrain). It only ever
// *requests* transitions — the actual split/unsplit runs at the next
// step/train boundary where box ownership is safe to take.
func (e *Engine) autosplitCheck(now int64) {
	a := e.auto
	if a == nil || e.draining.Load() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.checks++
	if a.cfg.CheckEvery > 1 && a.checks%uint64(a.cfg.CheckEvery) != 0 {
		return
	}
	if a.target != "" {
		st, ok := e.BoxSplit(a.target)
		switch {
		case ok && st.Active:
			if a.cfg.Hot.Cool(e.stats, st.Replicas, now) {
				a.cool++
			} else {
				a.cool = 0
			}
			if a.cool >= a.cfg.HoldCool {
				var corr uint64
				if e.journal != nil {
					// Journal the cool verdict (the cause) before the
					// request; the eventual unsplit carries the same
					// correlation id (the effect).
					corr = e.journal.NewCorr()
					e.journal.Append(events.Event{
						Time: now, Kind: events.KindCoolBox, Subject: a.target,
						Corr: corr, V1: float64(a.cool),
					})
				}
				e.requestUnsplitCorr(a.target, corr)
				a.target, a.cool = "", 0
			}
		case e.pendTrans.Load() == nil:
			// The split request was dropped (Drain) or failed; resume
			// scanning. While a request is still pending, keep waiting.
			a.target, a.cool = "", 0
		}
		return
	}
	for _, id := range a.eligible {
		if a.cfg.Hot.Hot(e.stats, id, now) {
			a.hot[id]++
		} else {
			a.hot[id] = 0
		}
	}
	for _, id := range a.eligible {
		if a.hot[id] >= a.cfg.HoldHot {
			var corr uint64
			if e.journal != nil {
				// The hot verdict is the cause: journal it with the
				// predicate's measured values, then thread its correlation
				// id through the request so the installed split (the
				// effect) shares it.
				workFrac, queue := a.cfg.Hot.Measure(e.stats, id, now)
				corr = e.journal.NewCorr()
				e.journal.Append(events.Event{
					Time: now, Kind: events.KindHotBox, Subject: id,
					Corr: corr, V1: workFrac, V2: queue,
				})
			}
			e.requestSplitCorr(id, a.cfg.Replicas, corr)
			a.target = id
			a.hot[id] = 0
			return
		}
	}
}
