package engine

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Monitor is the QoS Monitor of Fig 3: it constantly observes the QoS of
// output tuples; this information drives the Scheduler and informs the
// Load Shedder when and where it is appropriate to discard tuples (§2.3).
type Monitor struct {
	clock Clock
}

// NewMonitor returns a monitor bound to the engine clock.
func NewMonitor(c Clock) *Monitor { return &Monitor{clock: c} }

// outputState tracks one application output's deliveries against its QoS
// specification. mu guards the observation state: in parallel mode every
// worker whose train reaches an output observes concurrently, and the
// shedder's noteDrop runs on ingest goroutines.
type outputState struct {
	name     string
	spec     *qos.Spec
	valueIdx int
	latency  *metrics.Histogram
	// util is the delivered-QoS attribution gauge: the running mean of
	// per-tuple utility against the attached QoS graphs, registered so
	// /metrics scrapes carry delivered quality. Nil when the output has
	// no QoS spec (utility would be constant 1 — noise, not signal).
	util *metrics.FloatGauge
	// relay marks an output whose tuples continue to another node; traced
	// spans are not finalized at relay outputs.
	relay bool

	mu        sync.Mutex
	utilSum   float64 // sum of per-tuple latency*value utility
	delivered uint64
	dropped   uint64

	// Latency-SLO plane state, all under mu. lat is the cumulative
	// delivered-latency sketch (nil when the plane is off — the hot path
	// then pays one nil check); tails accumulates the queue/proc/net
	// decomposition of traced spans whose latency cleared tailCut, the
	// evidence tail attribution ranks; warned and sloIdx belong to the
	// forecaster's once-per-window latch.
	lat       *sketch.Sketch
	tailCut   float64
	tails     map[string]*tailAgg
	tailSpans uint64
	tailNs    int64
	warned    bool
	breached  bool
	sloIdx    int64
}

// tailAgg is one contributor's accumulated share of tail-span latency:
// a box (queue + proc segments) or a network link (net segments).
type tailAgg struct {
	queue, proc, net int64
}

// enableLatencySketch switches the output's sketch recording on; called
// once from New before the engine runs, never concurrently.
func (os *outputState) enableLatencySketch() {
	os.lat = sketch.New(sketch.DefaultAlpha)
	os.tails = map[string]*tailAgg{}
	os.sloIdx = -1
}

// noteTail folds a finished traced span into the per-contributor tail
// accumulators when its end-to-end latency clears the tail cut (a
// tailCut of 0 — before the first refresh — admits every span).
func (os *outputState) noteTail(sp *trace.Span) {
	lat := float64(sp.Total())
	os.mu.Lock()
	defer os.mu.Unlock()
	if lat < os.tailCut {
		return
	}
	for _, st := range sp.Stages {
		a, ok := os.tails[st.Name]
		if !ok {
			a = &tailAgg{}
			os.tails[st.Name] = a
		}
		switch st.Kind {
		case trace.KindQueue:
			a.queue += st.Dur
		case trace.KindProc:
			a.proc += st.Dur
		case trace.KindNet:
			a.net += st.Dur
		}
	}
	os.tailSpans++
	os.tailNs += sp.Total()
}

// decayTails halves every tail accumulator — called once per stats
// window so attribution tracks recent behavior instead of averaging a
// slowdown away against the whole run's history. Callers hold os.mu.
func (os *outputState) decayTails() {
	for name, a := range os.tails {
		a.queue /= 2
		a.proc /= 2
		a.net /= 2
		if a.queue == 0 && a.proc == 0 && a.net == 0 {
			delete(os.tails, name)
		}
	}
	os.tailSpans -= os.tailSpans / 2
	os.tailNs -= os.tailNs / 2
}

func newOutputState(o *query.Output, schema *stream.Schema, reg *metrics.Registry) (*outputState, error) {
	os := &outputState{
		name:     o.Name,
		spec:     o.QoS,
		valueIdx: -1,
		latency:  reg.Histogram("output." + o.Name + ".latency_ns"),
	}
	if o.QoS != nil {
		os.util = reg.FloatGauge("output." + o.Name + ".utility")
	}
	if o.QoS != nil && o.QoS.Value != nil {
		if schema == nil {
			return nil, fmt.Errorf("value QoS on output with unknown schema")
		}
		idx := schema.Index(o.QoS.ValueField)
		if idx < 0 {
			return nil, fmt.Errorf("value QoS field %q not in output schema %s",
				o.QoS.ValueField, schema)
		}
		os.valueIdx = idx
	}
	return os, nil
}

// observe records one delivered tuple at time now.
func (os *outputState) observe(t stream.Tuple, now int64) {
	lat := float64(now - t.TS)
	if lat < 0 {
		lat = 0
	}
	os.latency.Observe(lat)
	u := 1.0
	if os.spec != nil && os.spec.Latency != nil {
		u *= os.spec.Latency.Utility(lat)
	}
	if os.valueIdx >= 0 {
		u *= os.spec.Value.Utility(t.Field(os.valueIdx).AsFloat())
	}
	os.mu.Lock()
	os.utilSum += u
	os.delivered++
	mean := os.utilSum / float64(os.delivered)
	if os.lat != nil {
		os.lat.Record(lat) // zero-alloc; the SLO plane's raw material
	}
	os.mu.Unlock()
	if os.util != nil {
		// One atomic store per delivery: the gauge always equals
		// utilSum/delivered, the exact mean the QoS graphs assign to the
		// observed latency samples (the property the tests pin).
		os.util.Set(mean)
	}
}

// observeTrain is observe over a delivered emission run: one mutex
// acquisition and one utility-gauge store per run instead of per tuple.
// The latency histogram and sketch recorders are atomic/lock-free, so
// folding them under the mutex costs nothing extra.
func (os *outputState) observeTrain(ts []stream.Tuple, now int64) {
	if len(ts) == 0 {
		return
	}
	os.mu.Lock()
	for i := range ts {
		lat := float64(now - ts[i].TS)
		if lat < 0 {
			lat = 0
		}
		os.latency.Observe(lat)
		u := 1.0
		if os.spec != nil && os.spec.Latency != nil {
			u *= os.spec.Latency.Utility(lat)
		}
		if os.valueIdx >= 0 {
			u *= os.spec.Value.Utility(ts[i].Field(os.valueIdx).AsFloat())
		}
		os.utilSum += u
		os.delivered++
		if os.lat != nil {
			os.lat.Record(lat)
		}
	}
	mean := os.utilSum / float64(os.delivered)
	os.mu.Unlock()
	if os.util != nil {
		os.util.Set(mean)
	}
}

// hasQoS reports whether the output carries a QoS spec — only then is
// its utility worth attributing (without one utility is constant 1).
func (os *outputState) hasQoS() bool { return os.spec != nil }

// qosCounters returns the cumulative delivered-utility sum and delivery
// count, the raw counters SampleStats feeds the stats plane.
func (os *outputState) qosCounters() (utilSum float64, delivered uint64) {
	os.mu.Lock()
	defer os.mu.Unlock()
	return os.utilSum, os.delivered
}

// noteDrop charges one shed tuple against the output's loss accounting.
func (os *outputState) noteDrop() {
	os.mu.Lock()
	os.dropped++
	os.mu.Unlock()
}

// OutputReport summarizes one output's observed QoS.
type OutputReport struct {
	Name      string
	Delivered uint64
	Dropped   uint64
	Latency   metrics.Summary
	// Utility is the aggregate perceived QoS: the mean per-tuple
	// latency/value utility scaled by the loss graph evaluated at the
	// delivered fraction. This is the quantity Aurora's operational goal
	// maximizes (§7.1).
	Utility float64
	// DeliveredFraction is delivered / (delivered + dropped).
	DeliveredFraction float64
}

func (os *outputState) report() OutputReport {
	os.mu.Lock()
	delivered, dropped, utilSum := os.delivered, os.dropped, os.utilSum
	os.mu.Unlock()
	r := OutputReport{
		Name:      os.name,
		Delivered: delivered,
		Dropped:   dropped,
		Latency:   os.latency.Snapshot(),
	}
	total := delivered + dropped
	if total == 0 {
		r.DeliveredFraction = 1
		return r
	}
	r.DeliveredFraction = float64(delivered) / float64(total)
	mean := 0.0
	if delivered > 0 {
		mean = utilSum / float64(delivered)
	}
	lossU := 1.0
	if os.spec != nil && os.spec.Loss != nil {
		lossU = os.spec.Loss.Utility(r.DeliveredFraction)
	}
	r.Utility = mean * lossU
	return r
}
