package engine

import (
	"testing"

	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stream"
)

var tSchema = stream.MustSchema("t",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

func filterSpec(pred string) op.Spec {
	return op.Spec{Kind: "filter", Params: map[string]string{"predicate": pred}}
}

func tumbleSpec() op.Spec {
	return op.Spec{Kind: "tumble", Params: map[string]string{
		"agg": "cnt", "on": "B", "groupby": "A"}}
}

// chainNet builds in -> filter(B<100) -> tumble(cnt by A) -> out.
func chainNet(t *testing.T, spec *qos.Spec) *query.Network {
	t.Helper()
	n, err := query.NewBuilder("chain").
		AddBox("f", filterSpec("B < 100")).
		AddBox("tb", tumbleSpec()).
		Connect("f", "tb").
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "tb", 0, spec).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func tuple(a, b int64) stream.Tuple {
	return stream.NewTuple(stream.Int(a), stream.Int(b))
}

func newVirtualEngine(t *testing.T, net *query.Network, cfg Config) (*Engine, *VirtualClock) {
	t.Helper()
	vc := NewVirtualClock(1)
	cfg.Clock = vc
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, vc
}

func TestEngineEndToEnd(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	var got []stream.Tuple
	e.OnOutput(func(name string, tp stream.Tuple) {
		if name != "out" {
			t.Errorf("unexpected output %q", name)
		}
		got = append(got, tp)
	})
	// Figure 2 stream; B<100 passes everything; tumble counts runs of A.
	rows := [][2]int64{{1, 2}, {1, 3}, {2, 2}, {2, 1}, {2, 6}, {4, 5}, {4, 2}}
	for _, r := range rows {
		if !e.Ingest("in", tuple(r[0], r[1])) {
			t.Fatal("ingest rejected")
		}
	}
	e.Drain()
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(2)),
		stream.NewTuple(stream.Int(2), stream.Int(3)),
		stream.NewTuple(stream.Int(4), stream.Int(2)),
	}
	if !stream.TuplesEqualValues(got, want) {
		t.Fatalf("got:\n%swant:\n%s", stream.FormatTuples(got), stream.FormatTuples(want))
	}
	if e.Ingested() != 7 {
		t.Errorf("Ingested = %d", e.Ingested())
	}
}

func TestEngineUnknownInput(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	if e.Ingest("nope", tuple(1, 1)) {
		t.Error("unknown input must be rejected")
	}
}

func TestEngineStampsSeqAndTS(t *testing.T) {
	e, vc := newVirtualEngine(t, chainNet(t, nil), Config{})
	vc.Advance(999)
	var out []stream.Tuple
	e.OnOutput(func(_ string, tp stream.Tuple) { out = append(out, tp) })
	e.Ingest("in", tuple(1, 1))
	e.Ingest("in", tuple(2, 1)) // closes window for A=1
	e.RunUntilIdle(0)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Seq == 0 || out[0].TS == 0 {
		t.Error("engine must stamp Seq and TS at ingest")
	}
}

func TestEngineVirtualTimeAdvances(t *testing.T) {
	e, vc := newVirtualEngine(t, chainNet(t, nil), Config{DefaultBoxCost: 500})
	before := vc.Now()
	for i := 0; i < 10; i++ {
		e.Ingest("in", tuple(1, int64(i)))
	}
	e.RunUntilIdle(0)
	elapsed := vc.Now() - before
	// 10 tuples through filter (500ns each) + 10 through tumble.
	if elapsed != 10*500*2 {
		t.Errorf("virtual time advanced %d ns, want 10000", elapsed)
	}
}

func TestEnginePerBoxCostOverride(t *testing.T) {
	e, vc := newVirtualEngine(t, chainNet(t, nil), Config{
		DefaultBoxCost: 100,
		BoxCosts:       map[string]int64{"tb": 900},
	})
	e.Ingest("in", tuple(1, 1))
	e.RunUntilIdle(0)
	if got := vc.Now() - 1; got != 100+900 {
		t.Errorf("elapsed = %d, want 1000", got)
	}
	st, ok := e.Stats("tb")
	if !ok || st.Cost != 900 {
		t.Errorf("tb cost = %v", st.Cost)
	}
}

func TestEngineStats(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	for i := 0; i < 100; i++ {
		e.Ingest("in", tuple(int64(i%2), int64(i)))
	}
	e.RunUntilIdle(0)
	fs, ok := e.Stats("f")
	if !ok {
		t.Fatal("no stats for f")
	}
	if fs.Selectivity != 1.0 {
		t.Errorf("filter selectivity = %g, want 1 (nothing dropped)", fs.Selectivity)
	}
	all := e.AllStats()
	if len(all) != 2 || all[0].ID != "f" {
		t.Errorf("AllStats = %+v", all)
	}
	if _, ok := e.Stats("ghost"); ok {
		t.Error("ghost stats should be absent")
	}
	// A selective filter shows selectivity < 1.
	n2, _ := query.NewBuilder("sel").
		AddBox("f", filterSpec("B < 50")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, nil).
		Build()
	e2, _ := newVirtualEngine(t, n2, Config{})
	for i := 0; i < 100; i++ {
		e2.Ingest("in", tuple(0, int64(i)))
	}
	e2.RunUntilIdle(0)
	st, _ := e2.Stats("f")
	if st.Selectivity < 0.45 || st.Selectivity > 0.55 {
		t.Errorf("selectivity = %g, want ~0.5", st.Selectivity)
	}
}

func TestEngineQoSMonitoring(t *testing.T) {
	spec := &qos.Spec{Latency: qos.MustGraph(
		qos.Point{X: 0, U: 1}, qos.Point{X: 1e6, U: 1}, qos.Point{X: 2e6, U: 0})}
	e, _ := newVirtualEngine(t, chainNet(t, spec), Config{DefaultBoxCost: 10})
	for i := 0; i < 100; i++ {
		e.Ingest("in", tuple(int64(i), 1)) // every tuple a new group
	}
	e.Drain()
	rep, ok := e.Output("out")
	if !ok {
		t.Fatal("no output report")
	}
	if rep.Delivered != 100 {
		t.Errorf("delivered = %d", rep.Delivered)
	}
	if rep.Utility < 0.99 {
		t.Errorf("fast pipeline utility = %g, want ~1", rep.Utility)
	}
	if rep.DeliveredFraction != 1 {
		t.Errorf("delivered fraction = %g", rep.DeliveredFraction)
	}
	if rep.Latency.Count != 100 || rep.Latency.Mean <= 0 {
		t.Errorf("latency summary = %+v", rep.Latency)
	}
	if _, ok := e.Output("ghost"); ok {
		t.Error("ghost output should be absent")
	}
	names := e.OutputNames()
	if len(names) != 1 || names[0] != "out" {
		t.Errorf("OutputNames = %v", names)
	}
}

func TestEngineLatencyUtilityDegradesWhenSlow(t *testing.T) {
	spec := &qos.Spec{Latency: qos.MustGraph(
		qos.Point{X: 0, U: 1}, qos.Point{X: 1000, U: 0})}
	// Box cost 10000 ns per tuple >> 1000 ns deadline.
	e, _ := newVirtualEngine(t, chainNet(t, spec), Config{DefaultBoxCost: 10_000})
	for i := 0; i < 50; i++ {
		e.Ingest("in", tuple(int64(i), 1))
	}
	e.Drain()
	rep, _ := e.Output("out")
	if rep.Utility > 0.1 {
		t.Errorf("slow pipeline utility = %g, want ~0", rep.Utility)
	}
}

func TestEngineAdvanceTimeDrivesWSort(t *testing.T) {
	n, err := query.NewBuilder("ws").
		AddBox("w", op.Spec{Kind: "wsort", Params: map[string]string{
			"attrs": "A", "timeout": "100"}}).
		BindInput("in", tSchema, "w", 0).
		BindOutput("out", "w", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newVirtualEngine(t, n, Config{DefaultBoxCost: 1})
	var out []stream.Tuple
	e.OnOutput(func(_ string, tp stream.Tuple) { out = append(out, tp) })
	e.Ingest("in", tuple(5, 0))
	e.Ingest("in", tuple(2, 0))
	e.RunUntilIdle(0)
	if len(out) != 0 {
		t.Fatal("wsort should hold tuples until timeout")
	}
	e.AdvanceTime(500)
	if len(out) == 0 {
		t.Fatal("AdvanceTime should trigger wsort emission")
	}
	if out[0].Field(0).AsInt() != 2 {
		t.Errorf("first emission A = %d, want minimum 2", out[0].Field(0).AsInt())
	}
}

func TestEngineDrainFlushesWindows(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	var out []stream.Tuple
	e.OnOutput(func(_ string, tp stream.Tuple) { out = append(out, tp) })
	e.Ingest("in", tuple(7, 1))
	e.RunUntilIdle(0)
	if len(out) != 0 {
		t.Fatal("open window should not emit before drain")
	}
	e.Drain()
	if len(out) != 1 {
		t.Fatalf("drain should flush the open window; out=%v", out)
	}
	if e.QueuedTuples() != 0 {
		t.Error("drain must leave queues empty")
	}
}

func TestEngineStorageAccounting(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{MemoryBudget: 256})
	for i := 0; i < 100; i++ {
		e.Ingest("in", tuple(1, int64(i)))
	}
	st := e.Storage()
	if st.HighWater() == 0 {
		t.Error("high water should move")
	}
	if st.SpilledBytes() == 0 || st.SpillEvents() == 0 {
		t.Error("tiny budget must show spill")
	}
	if st.Pressure() <= 1 {
		t.Errorf("pressure = %g, want > 1", st.Pressure())
	}
	if st.Budget() != 256 {
		t.Errorf("budget = %d", st.Budget())
	}
	e.RunUntilIdle(0)
}

func TestEngineBuildErrors(t *testing.T) {
	// Value QoS referencing a missing output field fails at engine build.
	spec := &qos.Spec{
		Value:      qos.MustGraph(qos.Point{X: 0, U: 1}),
		ValueField: "ghost",
	}
	n, err := query.NewBuilder("bad").
		AddBox("f", filterSpec("true")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, spec).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(n, Config{}); err == nil {
		t.Error("value QoS on missing field should fail")
	}
}

func TestRunUntilIdleBounded(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	for i := 0; i < 10; i++ {
		e.Ingest("in", tuple(int64(i), 1))
	}
	steps := e.RunUntilIdle(1)
	if steps != 1 {
		t.Errorf("bounded run executed %d steps", steps)
	}
}
