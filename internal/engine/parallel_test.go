package engine

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Tests for the parallel wall-clock execution path: config validation,
// output equivalence against the serial engine, concurrent ingest safety
// (run these under -race), worker attribution in traces, and an
// env-gated speedup guard for CI hosts with enough cores.

// engineLeakGuard fails the test if engine worker goroutines outlive the
// pool. Same pattern as the transport leak guard: registered before the
// engine work so it runs after it (t.Cleanup is LIFO).
func engineLeakGuard(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// multiChainNet builds `chains` independent in_i -> filter -> tumble ->
// out_i pipelines in one network — disjoint work the dispatcher can hand
// to different workers with no conflicts.
func multiChainNet(t *testing.T, chains int) *query.Network {
	t.Helper()
	b := query.NewBuilder("par")
	for i := 0; i < chains; i++ {
		f, tb := fmt.Sprintf("f%d", i), fmt.Sprintf("tb%d", i)
		b.AddBox(f, filterSpec("B < 1000000")).
			AddBox(tb, tumbleSpec()).
			Connect(f, tb).
			BindInput(fmt.Sprintf("in%d", i), tSchema, f, 0).
			BindOutput(fmt.Sprintf("out%d", i), tb, 0, nil)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// multiFilterNet is multiChainNet without the windowed tumble, so every
// ingested tuple surfaces at an output and counts are exact.
func multiFilterNet(t *testing.T, chains int) *query.Network {
	t.Helper()
	b := query.NewBuilder("parf")
	for i := 0; i < chains; i++ {
		f := fmt.Sprintf("f%d", i)
		b.AddBox(f, filterSpec("B >= 0")).
			BindInput(fmt.Sprintf("in%d", i), tSchema, f, 0).
			BindOutput(fmt.Sprintf("out%d", i), f, 0, nil)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newWallEngine(t *testing.T, net *query.Network, cfg Config) *Engine {
	t.Helper()
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// sink collects output tuples under a lock: with a worker pool, OnOutput
// fires from multiple goroutines.
type sink struct {
	mu sync.Mutex
	by map[string][]stream.Tuple
}

func newSink() *sink { return &sink{by: map[string][]stream.Tuple{}} }

func (s *sink) fn(name string, tp stream.Tuple) {
	s.mu.Lock()
	s.by[name] = append(s.by[name], tp)
	s.mu.Unlock()
}

func (s *sink) get(name string) []stream.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]stream.Tuple(nil), s.by[name]...)
}

func (s *sink) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ts := range s.by {
		n += len(ts)
	}
	return n
}

func TestParallelConfigRejectsVirtualClock(t *testing.T) {
	vc := NewVirtualClock(1)
	_, err := New(chainNet(t, nil), Config{Clock: vc, Workers: 2})
	if err == nil {
		t.Fatal("Workers with a VirtualClock must be a config error")
	}
	// RunParallel on a virtual-clock engine panics rather than silently
	// breaking determinism.
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	defer func() {
		if recover() == nil {
			t.Error("RunParallel on a virtual clock must panic")
		}
	}()
	e.RunParallel(2)
}

func TestRunParallelSingleWorkerFallsBackToSerial(t *testing.T) {
	engineLeakGuard(t)
	e := newWallEngine(t, multiFilterNet(t, 2), Config{})
	s := newSink()
	e.OnOutput(s.fn)
	for i := 0; i < 50; i++ {
		e.Ingest("in0", tuple(1, int64(i)))
	}
	e.RunParallel(1)
	if got := len(s.get("out0")); got != 50 {
		t.Errorf("delivered %d of 50", got)
	}
}

// runChainWorkload drives the same deterministic workload through an
// engine with the given worker count and returns the per-output tuples.
func runChainWorkload(t *testing.T, workers, chains, perChain int) *sink {
	t.Helper()
	engineLeakGuard(t)
	e := newWallEngine(t, multiChainNet(t, chains), Config{Workers: workers})
	s := newSink()
	e.OnOutput(s.fn)
	for j := 0; j < perChain; j++ {
		for i := 0; i < chains; i++ {
			// A cycles so tumble closes a window on every group change;
			// B carries the per-chain sequence.
			e.Ingest(fmt.Sprintf("in%d", i), tuple(int64(j%5), int64(j)))
		}
	}
	e.Run()
	e.Drain()
	return s
}

func TestParallelMatchesSerialOnChains(t *testing.T) {
	const chains, per = 4, 400
	serial := runChainWorkload(t, 0, chains, per)
	par := runChainWorkload(t, 4, chains, per)
	for i := 0; i < chains; i++ {
		name := fmt.Sprintf("out%d", i)
		a, b := serial.get(name), par.get(name)
		if !stream.TuplesEqualValues(a, b) {
			t.Errorf("%s diverged: serial %d tuples, parallel %d\nserial:\n%sparallel:\n%s",
				name, len(a), len(b),
				stream.FormatTuples(a), stream.FormatTuples(b))
		}
	}
}

func TestParallelFanInPreservesPerSourceOrder(t *testing.T) {
	// Two sources meet at a Union: §2.2's union is order-preserving per
	// input with no promise across inputs, and the parallel engine must
	// keep exactly that contract — multiset equality overall, strict
	// order within each source.
	engineLeakGuard(t)
	n, err := query.NewBuilder("fanin").
		AddBox("u", op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}).
		AddBox("f", filterSpec("B >= 0")).
		Connect("u", "f").
		BindInput("a", tSchema, "u", 0).
		BindInput("b", tSchema, "u", 1).
		BindOutput("out", "f", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e := newWallEngine(t, n, Config{Workers: 4})
	s := newSink()
	e.OnOutput(s.fn)
	const per = 500
	for j := 0; j < per; j++ {
		e.Ingest("a", tuple(0, int64(j)))
		e.Ingest("b", tuple(1, int64(j)))
	}
	e.Run()
	e.Drain()
	out := s.get("out")
	if len(out) != 2*per {
		t.Fatalf("delivered %d, want %d", len(out), 2*per)
	}
	next := map[int64]int64{0: 0, 1: 0}
	for _, tp := range out {
		src, seq := tp.Field(0).AsInt(), tp.Field(1).AsInt()
		if seq != next[src] {
			t.Fatalf("source %d: got seq %d, want %d (per-source order broken)",
				src, seq, next[src])
		}
		next[src]++
	}
}

func TestConcurrentIngestWhileStepping(t *testing.T) {
	// The serial Step loop with a concurrent producer: exercises the
	// queue locks and atomic counters that used to be plain fields.
	// Meaningful under -race.
	engineLeakGuard(t)
	e := newWallEngine(t, multiFilterNet(t, 2), Config{})
	s := newSink()
	e.OnOutput(s.fn)
	const per = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j := 0; j < per; j++ {
			e.Ingest("in0", tuple(0, int64(j)))
			e.Ingest("in1", tuple(1, int64(j)))
		}
	}()
	for {
		worked := e.Step()
		select {
		case <-done:
			if !worked && e.QueuedTuples() == 0 {
				if got := s.total(); got != 2*per {
					t.Fatalf("delivered %d, want %d", got, 2*per)
				}
				if got := e.Ingested(); got != 2*per {
					t.Fatalf("Ingested = %d, want %d", got, 2*per)
				}
				return
			}
		default:
		}
	}
}

func TestConcurrentIngestDuringRunParallel(t *testing.T) {
	// Producers race the worker pool itself: Ingest must kick idle
	// workers awake and every tuple must surface exactly once.
	engineLeakGuard(t)
	const chains, per = 4, 1000
	e := newWallEngine(t, multiFilterNet(t, chains), Config{Workers: 4})
	s := newSink()
	e.OnOutput(s.fn)
	var wg sync.WaitGroup
	for i := 0; i < chains; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := fmt.Sprintf("in%d", i)
			for j := 0; j < per; j++ {
				e.Ingest(in, tuple(int64(i), int64(j)))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		e.RunParallel(4)
		select {
		case <-done:
			if e.QueuedTuples() == 0 {
				e.Drain()
				for i := 0; i < chains; i++ {
					name := fmt.Sprintf("out%d", i)
					out := s.get(name)
					if len(out) != per {
						t.Fatalf("%s delivered %d, want %d", name, len(out), per)
					}
					for j, tp := range out {
						if tp.Field(1).AsInt() != int64(j) {
							t.Fatalf("%s[%d] = %d (order broken)", name, j, tp.Field(1).AsInt())
						}
					}
				}
				return
			}
		default:
			runtime.Gosched()
		}
	}
}

func TestParallelTraceWorkerAttribution(t *testing.T) {
	// Every traced segment executed by a pool worker carries its 1-based
	// worker id, so a Chrome trace can lane work by worker.
	engineLeakGuard(t)
	rec := trace.NewRecorder(8192)
	tr := trace.NewTracer("n1", 1, rec)
	const chains = 4
	e := newWallEngine(t, multiChainNet(t, chains), Config{Workers: 4, Tracer: tr})
	for j := 0; j < 200; j++ {
		for i := 0; i < chains; i++ {
			e.Ingest(fmt.Sprintf("in%d", i), tuple(int64(j%5), int64(j)))
		}
	}
	e.Run()
	e.Drain()
	attributed := 0
	for _, ev := range rec.Events() {
		if ev.Worker < 0 || ev.Worker > 4 {
			t.Fatalf("event %+v has worker id outside pool", ev)
		}
		if ev.Worker > 0 {
			attributed++
		}
	}
	if attributed == 0 {
		t.Error("no trace segment carries a worker id; pool attribution lost")
	}
}

func TestParallelSpeedupGuard(t *testing.T) {
	// CI throughput guard: 4 workers must beat serial by >= 1.5x on an
	// embarrassingly parallel workload. Only meaningful with real cores,
	// so it is env-gated like the trace and stats guards.
	if os.Getenv("CI_PARALLEL_GUARD") == "" {
		t.Skip("set CI_PARALLEL_GUARD=1 to run the parallel speedup guard")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for the speedup guard, have %d", runtime.GOMAXPROCS(0))
	}
	const chains, per = 4, 30000
	run := func(workers int) time.Duration {
		e := newWallEngine(t, multiChainNet(t, chains), Config{Workers: workers})
		for j := 0; j < per; j++ {
			for i := 0; i < chains; i++ {
				e.Ingest(fmt.Sprintf("in%d", i), tuple(int64(j%7), int64(j)))
			}
		}
		start := time.Now()
		e.Run()
		return time.Since(start)
	}
	// Best of two runs each, serial and parallel interleaved, to shave
	// scheduler and cache noise.
	best := func(w int) time.Duration {
		d := run(w)
		if d2 := run(w); d2 < d {
			d = d2
		}
		return d
	}
	serial, par := best(0), best(4)
	speedup := float64(serial) / float64(par)
	t.Logf("serial %v, 4 workers %v, speedup %.2fx", serial, par, speedup)
	if speedup < 1.5 {
		t.Errorf("speedup %.2fx < 1.5x (serial %v, parallel %v)", speedup, serial, par)
	}
}
