package engine

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
)

// This file promotes the box split of §5.1 from a network-rewrite
// load-shedding tool (internal/loadmgr) into a runtime execution
// strategy: a hot box is split in place into N key-sharded replica
// instances that the scheduler dispatches like any other boxes — so N
// workers can burn N cores on what used to be a single-owner bottleneck
// — and folded back when load subsides, with in-flight work drained
// across both transitions so no tuple is lost or duplicated.
//
// Ownership protocol. A transition may only run while its boxes are
// unowned: the serial path applies transitions at step boundaries (where
// the loop owns everything), and the parallel path claims the parent
// (and, for an un-split, every replica and merge box) through the
// dispatcher exactly like a train would, so operator instances stay
// single-threaded. Deliveries need no ownership — they are queue pushes
// — so the route flip is guarded separately: partition.mu makes the
// check-active-and-push step atomic against the flip, which means that
// after a flip no tuple can land on the losing side.

// partition is the runtime split state attached to a parent box: the
// key-sharded replicas, the merge chain folding their output back
// together, and the hash route that deliver consults.
type partition struct {
	parent *boxState
	n      int
	reps   []*boxState
	merge  []*boxState // flow order; empty for stateless operators
	keyIdx []int       // key columns in the parent input schema; nil = round-robin
	rr     atomic.Uint64

	// mu guards active: deliver admits tuples to replicas under the read
	// lock, transitions flip active under the write lock, so a flip
	// strictly orders every in-flight admission to one side of it.
	mu     sync.RWMutex
	active bool
}

// admit pushes t onto the key-owning replica's queue when the partition
// is active, reporting whether it did. The push happens under the route
// read-lock so an un-split's flip can never strand a tuple on a replica
// being drained.
func (p *partition) admit(t stream.Tuple, now int64, size int) bool {
	p.mu.RLock()
	if !p.active {
		p.mu.RUnlock()
		return false
	}
	p.reps[p.shard(t)].inQ[0].PushSized(t, now, size)
	p.mu.RUnlock()
	return true
}

// shard maps a tuple to its replica: FNV-64a over the formatted key
// columns (the same hash family as op.HashCall, so §5.2's "hash-half"
// intuition carries over), or round-robin when the operator declared no
// key.
func (p *partition) shard(t stream.Tuple) int {
	if len(p.keyIdx) == 0 {
		return int(p.rr.Add(1) % uint64(p.n))
	}
	h := fnv.New64a()
	for _, i := range p.keyIdx {
		h.Write([]byte(t.Field(i).Format()))
		h.Write([]byte{0x1f})
	}
	return int(h.Sum64() % uint64(p.n))
}

// buildPartition constructs (but does not install) a partition for b:
// n fresh replica instances of the parent's spec and the operator's
// declared merge chain, wired replicas -> merge head -> ... -> merge
// tail -> the parent's downstream routes (or replicas directly into the
// parent's downstream when no merge is needed).
func (e *Engine) buildPartition(b *boxState, n int, prof op.SplitProfile) (*partition, error) {
	inSchemas := e.net.InputSchemas(b.id)
	p := &partition{parent: b, n: n}
	if len(prof.Key) > 0 {
		idx, err := inSchemas[0].Indices(prof.Key...)
		if err != nil {
			return nil, fmt.Errorf("engine: split of %q: %w", b.id, err)
		}
		p.keyIdx = idx
	}

	newBox := func(id string, inst op.Operator, replica int) *boxState {
		nb := &boxState{
			id:       id,
			inst:     inst,
			inQ:      []*entryQueue{newEntryQueue()},
			virtCost: b.virtCost,
			cost:     metrics.NewEWMA(0.2),
			wait:     metrics.NewEWMA(0.2),
			replica:  replica,
			parentID: b.id,
		}
		nb.downstream = make([][]route, inst.NumOut())
		nb.cpH = make([]*stream.History, inst.NumOut())
		nb.taps = make([]atomic.Pointer[[]op.Emit], inst.NumOut())
		nb.emit = e.makeEmit(nb)
		nb.refreshInst()
		return nb
	}

	spec := e.net.Box(b.id).Spec
	for k := 1; k <= n; k++ {
		inst, err := op.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("engine: split of %q: %w", b.id, err)
		}
		if inst.NumIn() != 1 || inst.NumOut() != 1 {
			return nil, fmt.Errorf("engine: split of %q: only single-input single-output boxes can be split", b.id)
		}
		if _, err := inst.Bind(inSchemas); err != nil {
			return nil, fmt.Errorf("engine: split of %q: %w", b.id, err)
		}
		p.reps = append(p.reps, newBox(fmt.Sprintf("%s#%d", b.id, k), inst, k))
	}

	cur := e.net.OutputSchema(query.Port{Box: b.id, Port: 0})
	for i, ms := range prof.Merge {
		inst, err := op.Build(ms)
		if err != nil {
			return nil, fmt.Errorf("engine: split of %q: merge stage %d: %w", b.id, i+1, err)
		}
		outs, err := inst.Bind([]*stream.Schema{cur})
		if err != nil {
			return nil, fmt.Errorf("engine: split of %q: merge stage %d: %w", b.id, i+1, err)
		}
		cur = outs[0]
		p.merge = append(p.merge, newBox(fmt.Sprintf("%s#m%d", b.id, i+1), inst, 0))
	}

	// Wire the internal routes. The merge tail (or each replica, when no
	// merge is needed) shares the parent's downstream slice, so split
	// output reaches exactly the consumers the unsplit box fed.
	repDown := b.downstream[0]
	if len(p.merge) > 0 {
		repDown = []route{{box: p.merge[0], port: 0}}
		for i := 0; i < len(p.merge)-1; i++ {
			p.merge[i].downstream[0] = []route{{box: p.merge[i+1], port: 0}}
		}
		p.merge[len(p.merge)-1].downstream[0] = b.downstream[0]
	}
	for _, rb := range p.reps {
		rb.downstream[0] = repDown
	}
	return p, nil
}

// refreshPartition rebuilds the operator instances of a cached partition
// before it is reused: a flushed operator is empty but not virgin — a
// merge WSort retains its release watermark across flushes and would
// silently discard the next cycle's "late" keys. The box identities (and
// with them the replicas' stats series and counters) stay stable; only
// the instances start over.
func (e *Engine) refreshPartition(b *boxState, p *partition, prof op.SplitProfile) error {
	inSchemas := e.net.InputSchemas(b.id)
	spec := e.net.Box(b.id).Spec
	for _, rb := range p.reps {
		inst, err := op.Build(spec)
		if err != nil {
			return fmt.Errorf("engine: re-split of %q: %w", b.id, err)
		}
		if _, err := inst.Bind(inSchemas); err != nil {
			return fmt.Errorf("engine: re-split of %q: %w", b.id, err)
		}
		rb.inst = inst
		rb.refreshInst()
	}
	cur := e.net.OutputSchema(query.Port{Box: b.id, Port: 0})
	for i, mb := range p.merge {
		inst, err := op.Build(prof.Merge[i])
		if err != nil {
			return fmt.Errorf("engine: re-split of %q: merge stage %d: %w", b.id, i+1, err)
		}
		outs, err := inst.Bind([]*stream.Schema{cur})
		if err != nil {
			return fmt.Errorf("engine: re-split of %q: merge stage %d: %w", b.id, i+1, err)
		}
		cur = outs[0]
		mb.inst = inst
		mb.refreshInst()
	}
	return nil
}

// SplitBox splits the named box into n key-sharded replicas at runtime.
// The parent's backlog is first processed through its own instance and
// its windowed state flushed downstream (the §5.1 stabilization, scoped
// to one box), then the hash route is activated — so no tuple is lost,
// duplicated, or reordered within its key class across the transition.
// The parent stays in the topology as the un-split fold-back point.
//
// SplitBox follows the serial-control contract: call it from the
// scheduling thread's quiescent points or let RequestSplit route it
// through a step/train boundary; it must not race Step or an owned
// train on the same box.
func (e *Engine) SplitBox(id string, n int) error {
	return e.splitBoxCorr(id, n, 0)
}

// splitBoxCorr is SplitBox carrying the correlation id of the decision
// that caused it (0 = direct call, a fresh id is minted), so the journal
// chains cause (hot-box verdict) to effect (split installed).
func (e *Engine) splitBoxCorr(id string, n int, corr uint64) error {
	e.topoMu.Lock()
	defer e.topoMu.Unlock()
	if n < 2 {
		return fmt.Errorf("engine: split of %q: need at least 2 replicas, got %d", id, n)
	}
	b, ok := e.snap().byID[id]
	if !ok {
		return fmt.Errorf("engine: no box %q", id)
	}
	if b.parentID != "" {
		return fmt.Errorf("engine: box %q is part of the split of %q and cannot be split itself", id, b.parentID)
	}
	if b.part.Load() != nil {
		return fmt.Errorf("engine: box %q is already split", id)
	}
	prof, err := op.SplitProfileFor(e.net.Box(id).Spec)
	if err != nil {
		return fmt.Errorf("engine: box %q: %w", id, err)
	}
	p := b.cached
	if p == nil || p.n != n {
		// First split, or a different width: build fresh. The partition
		// is cached across split/unsplit cycles so oscillating load
		// neither regrows the topology nor resets replica counters.
		p, err = e.buildPartition(b, n, prof)
		if err != nil {
			return err
		}
		b.cached = p
	} else if err := e.refreshPartition(b, p, prof); err != nil {
		return err
	}

	// Stabilize the parent: process its backlog and flush open windowed
	// state downstream, so the replicas start from clean per-key state.
	e.drainThrough(b)
	b.inst.Flush(b.emit)

	e.installPartition(b, p)
	b.part.Store(p)
	p.mu.Lock()
	p.active = true
	// Sweep tuples that raced into the parent queue between the backlog
	// drain and activation out to their shards. Under the write lock no
	// admission is mid-flight, so the queue cannot refill behind the
	// sweep; anything delivered after the flip hashes to a replica.
	for {
		en, ok := b.inQ[0].Pop()
		if !ok {
			break
		}
		p.reps[p.shard(en.t)].inQ[0].PushSized(en.t, en.enq, en.size)
	}
	p.mu.Unlock()
	e.splitCtr.Add(1)
	now := e.clock.Now()
	if e.journal != nil {
		if corr == 0 {
			corr = e.journal.NewCorr()
		}
		e.journal.Append(events.Event{
			Time: now, Kind: events.KindSplit, Subject: id, Corr: corr,
			V1: float64(n),
		})
	}
	e.tracer.AnnotateID(corr, "split:"+id, now)
	return nil
}

// UnsplitBox folds a split box back to its single instance: the route is
// flipped first (new deliveries land on the parent again), then every
// replica and merge stage is drained and flushed in flow order, so the
// partials buffered in the merge network reach the downstream consumers
// before the replicas retire. Same calling contract as SplitBox.
func (e *Engine) UnsplitBox(id string) error {
	return e.unsplitBoxCorr(id, 0)
}

// unsplitBoxCorr is UnsplitBox with the causing decision's correlation
// id (0 = direct call; a fresh id is minted for the journal event).
func (e *Engine) unsplitBoxCorr(id string, corr uint64) error {
	e.topoMu.Lock()
	defer e.topoMu.Unlock()
	b, ok := e.snap().byID[id]
	if !ok {
		return fmt.Errorf("engine: no box %q", id)
	}
	p := b.part.Load()
	if p == nil {
		return fmt.Errorf("engine: box %q is not split", id)
	}
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
	b.part.Store(nil)

	// Drain in flow order: each replica's backlog and flush feed the
	// merge head; each merge stage's backlog and flush feed the next.
	for _, rb := range p.reps {
		e.drainThrough(rb)
		rb.inst.Flush(rb.emit)
	}
	for _, mb := range p.merge {
		e.drainThrough(mb)
		mb.inst.Flush(mb.emit)
	}
	e.removePartition(b, p)
	e.unsplitCtr.Add(1)
	now := e.clock.Now()
	if e.journal != nil {
		if corr == 0 {
			corr = e.journal.NewCorr()
		}
		e.journal.Append(events.Event{
			Time: now, Kind: events.KindUnsplit, Subject: id, Corr: corr,
			V1: float64(len(p.reps)),
		})
	}
	e.tracer.AnnotateID(corr, "unsplit:"+id, now)
	return nil
}

// drainThrough pops every queued tuple of a single-input box through its
// instance — the per-box half of §5.1's "drain the network" protocol,
// used by both transitions while the box is owned.
func (e *Engine) drainThrough(b *boxState) {
	for {
		en, ok := b.inQ[0].Pop()
		if !ok {
			return
		}
		e.qBytes.Add(int64(-en.size))
		b.inCount.Add(1)
		if sp := en.t.Span; sp != nil {
			sp.MarkReplica(trace.KindQueue, b.id, 0, b.replica, e.clock.Now())
			b.cur = sp
		}
		b.inst.Process(0, en.t, b.emit)
		b.cur = nil
	}
}

// installPartition swaps in a topology snapshot with the replicas and
// merge boxes inserted directly after the parent, preserving topological
// order. Callers hold topoMu.
func (e *Engine) installPartition(b *boxState, p *partition) {
	old := e.snap()
	add := make([]*boxState, 0, len(p.reps)+len(p.merge))
	add = append(add, p.reps...)
	add = append(add, p.merge...)
	boxes := make([]*boxState, 0, len(old.boxes)+len(add))
	for _, ob := range old.boxes {
		boxes = append(boxes, ob)
		if ob == b {
			boxes = append(boxes, add...)
		}
	}
	timed := append([]*boxState(nil), old.timed...)
	for _, nb := range add {
		if _, ok := nb.inst.(op.TimeDriven); ok {
			timed = append(timed, nb)
		}
	}
	byID := make(map[string]*boxState, len(old.byID)+len(add))
	for k, v := range old.byID {
		byID[k] = v
	}
	for _, nb := range add {
		byID[nb.id] = nb
	}
	e.snapPtr.Store(&topoSnap{boxes: boxes, timed: timed, byID: byID})
}

// removePartition swaps in a topology snapshot without the partition's
// replicas and merge boxes. Callers hold topoMu.
func (e *Engine) removePartition(b *boxState, p *partition) {
	gone := make(map[*boxState]bool, len(p.reps)+len(p.merge))
	for _, rb := range p.reps {
		gone[rb] = true
	}
	for _, mb := range p.merge {
		gone[mb] = true
	}
	old := e.snap()
	boxes := make([]*boxState, 0, len(old.boxes)-len(gone))
	var timed []*boxState
	for _, ob := range old.boxes {
		if !gone[ob] {
			boxes = append(boxes, ob)
		}
	}
	for _, ob := range old.timed {
		if !gone[ob] {
			timed = append(timed, ob)
		}
	}
	byID := make(map[string]*boxState, len(old.byID))
	for k, v := range old.byID {
		if !gone[v] {
			byID[k] = v
		}
	}
	e.snapPtr.Store(&topoSnap{boxes: boxes, timed: timed, byID: byID})
}

// transRequest is one pending split or un-split, applied at the next
// step/train boundary where box ownership is safe to take.
type transRequest struct {
	box   string
	n     int
	split bool
	corr  uint64 // correlation id of the decision that raised the request
}

// RequestSplit asks the engine to split the named box into n replicas at
// the next safe boundary. It is safe from any goroutine, including
// concurrently with Step or RunParallel; the latest request wins the
// single pending slot. Errors in the eventual transition (unknown box,
// not splittable, already split) are dropped — requests are advisory.
func (e *Engine) RequestSplit(box string, n int) {
	e.requestSplitCorr(box, n, 0)
}

func (e *Engine) requestSplitCorr(box string, n int, corr uint64) {
	e.pendTrans.Store(&transRequest{box: box, n: n, split: true, corr: corr})
	if d := e.disp.Load(); d != nil {
		d.kick()
	}
}

// RequestUnsplit asks the engine to fold the named box back at the next
// safe boundary. Same contract as RequestSplit.
func (e *Engine) RequestUnsplit(box string) {
	e.requestUnsplitCorr(box, 0)
}

func (e *Engine) requestUnsplitCorr(box string, corr uint64) {
	e.pendTrans.Store(&transRequest{box: box, corr: corr})
	if d := e.disp.Load(); d != nil {
		d.kick()
	}
}

// applyPendingSerial consumes the pending transition on the serial path,
// where the step boundary owns every box.
func (e *Engine) applyPendingSerial() {
	if e.draining.Load() {
		return
	}
	req := e.pendTrans.Swap(nil)
	if req == nil {
		return
	}
	e.applyRequest(req)
}

func (e *Engine) applyRequest(req *transRequest) {
	if req.split {
		_ = e.splitBoxCorr(req.box, req.n, req.corr)
	} else {
		_ = e.unsplitBoxCorr(req.box, req.corr)
	}
}

// tryApplyPendingParallel attempts the pending transition from a worker
// at a train boundary: it claims the involved boxes through the
// dispatcher exactly like trains do (parent for a split; parent,
// replicas, and merge boxes for an un-split), runs the transition with
// the dispatcher lock released, and reports whether the request was
// consumed. When a needed box is still owned it leaves the request
// pending and returns false — the owner's completion broadcast retries.
// Callers hold d.mu.
func (e *Engine) tryApplyPendingParallel(d *dispatcher) bool {
	if e.draining.Load() {
		e.pendTrans.Store(nil)
		return false
	}
	req := e.pendTrans.Load()
	if req == nil {
		return false
	}
	var claim []*boxState
	if b, ok := e.snap().byID[req.box]; ok {
		claim = append(claim, b)
		if !req.split {
			if p := b.part.Load(); p != nil {
				claim = append(claim, p.reps...)
				claim = append(claim, p.merge...)
			}
		}
	}
	for _, cb := range claim {
		if cb.running {
			return false
		}
	}
	if !e.pendTrans.CompareAndSwap(req, nil) {
		// A newer request replaced this one mid-claim; let it be
		// evaluated fresh on the next boundary.
		return false
	}
	for _, cb := range claim {
		cb.running = true
	}
	d.busy++
	d.mu.Unlock()
	e.applyRequest(req)
	d.mu.Lock()
	for _, cb := range claim {
		cb.running = false
	}
	d.busy--
	d.cond.Broadcast()
	return true
}

// SplitState describes a box's runtime split, for introspection and the
// autosplit controller.
type SplitState struct {
	Box      string
	Replicas []string // replica box ids, in shard order
	Merge    []string // merge chain box ids, in flow order
	Active   bool
}

// BoxSplit reports whether the named box exists and, when it is split,
// the replica and merge topology serving it.
func (e *Engine) BoxSplit(id string) (SplitState, bool) {
	b, ok := e.snap().byID[id]
	if !ok {
		return SplitState{}, false
	}
	st := SplitState{Box: id}
	p := b.part.Load()
	if p == nil {
		return st, true
	}
	p.mu.RLock()
	st.Active = p.active
	p.mu.RUnlock()
	for _, rb := range p.reps {
		st.Replicas = append(st.Replicas, rb.id)
	}
	for _, mb := range p.merge {
		st.Merge = append(st.Merge, mb.id)
	}
	return st, true
}

// SplitCounts returns the cumulative number of split and un-split
// transitions the engine has executed.
func (e *Engine) SplitCounts() (splits, unsplits uint64) {
	return e.splitCtr.Load(), e.unsplitCtr.Load()
}
