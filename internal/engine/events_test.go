package engine

import (
	"os"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
)

// eventsOfKind filters a journal tail down to one kind, oldest first.
func eventsOfKind(j *events.Journal, k events.Kind) []events.Event {
	var out []events.Event
	for _, ev := range j.Tail(j.Len()) {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func TestSplitUnsplitJournalEvents(t *testing.T) {
	j := events.NewJournal("n1", 64)
	e, _ := newVirtualEngine(t, passFilterNet(t), Config{Journal: j})
	if e.Journal() != j {
		t.Fatal("Journal accessor should return the configured journal")
	}
	if err := e.SplitBox("f", 3); err != nil {
		t.Fatal(err)
	}
	if err := e.UnsplitBox("f"); err != nil {
		t.Fatal(err)
	}
	splits := eventsOfKind(j, events.KindSplit)
	unsplits := eventsOfKind(j, events.KindUnsplit)
	if len(splits) != 1 || len(unsplits) != 1 {
		t.Fatalf("events = %s; want one split and one unsplit", events.Format(j.Tail(10)))
	}
	sp, un := splits[0], unsplits[0]
	if sp.Subject != "f" || sp.V1 != 3 || sp.Node != "n1" {
		t.Errorf("split event = %+v", sp)
	}
	if un.Subject != "f" || un.V1 != 3 {
		t.Errorf("unsplit event = %+v", un)
	}
	// Direct calls mint fresh correlation ids so trace marks still join.
	if sp.Corr == 0 || un.Corr == 0 || sp.Corr == un.Corr {
		t.Errorf("corr ids: split=%x unsplit=%x; want distinct non-zero", sp.Corr, un.Corr)
	}
	// A failed transition journals nothing.
	before := j.Total()
	if err := e.UnsplitBox("f"); err == nil {
		t.Fatal("second unsplit should fail")
	}
	if j.Total() != before {
		t.Error("failed transition must not journal")
	}
}

// TestAutoSplitCorrChain pins the cause→effect contract: the hot-box
// verdict (cause) and the split the controller installs (effect) share
// one correlation id, so a post-mortem can walk from predicate firing to
// topology change.
func TestAutoSplitCorrChain(t *testing.T) {
	j := events.NewJournal("n1", 256)
	e := newWallEngine(t, passFilterNet(t), Config{
		StatsEvery: 1,
		Journal:    j,
		AutoSplit: &AutoSplitConfig{
			Replicas: 2,
			WindowNs: int64(200 * time.Microsecond),
			HoldHot:  1,
			HoldCool: 1,
			Hot: stats.HotSpec{
				WorkFrac: 0.001,
				CoolFrac: 0.9,
				MinQueue: 1,
				Windows:  1,
			},
		},
	})
	collectOutputs(e)
	sent := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, _ := e.SplitCounts(); s >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never split the hot box")
		}
		ingestAll(e, recurringTuples(int64(sent), 2000))
		sent += 2000
		e.RunUntilIdle(0)
	}
	e.Drain()
	hots := eventsOfKind(j, events.KindHotBox)
	splits := eventsOfKind(j, events.KindSplit)
	if len(hots) == 0 || len(splits) == 0 {
		t.Fatalf("journal = %s; want hotbox and split events", events.Format(j.Tail(20)))
	}
	hot, sp := hots[0], splits[0]
	if hot.Corr == 0 || hot.Corr != sp.Corr {
		t.Errorf("corr chain broken: hotbox=%x split=%x", hot.Corr, sp.Corr)
	}
	if hot.Subject != "f" || sp.Subject != "f" {
		t.Errorf("subjects: hotbox=%q split=%q; want f", hot.Subject, sp.Subject)
	}
	if hot.V1 <= 0 {
		t.Errorf("hotbox workFrac = %v; want > 0 (the measured predicate value)", hot.V1)
	}
	if hot.Seq >= sp.Seq {
		t.Errorf("cause must precede effect: hot seq %d, split seq %d", hot.Seq, sp.Seq)
	}
}

func TestShedderJournalsEngageDisengage(t *testing.T) {
	j := events.NewJournal("n1", 64)
	e, _ := newVirtualEngine(t, shedNet(t), Config{
		DefaultBoxCost: 100,
		Journal:        j,
		Shed: &ShedConfig{Mode: ShedRandom, QueueHigh: 100, QueueLow: 10,
			StepUp: 0.2, StepDown: 0.1},
	})
	overload(e, 3000)
	if len(eventsOfKind(j, events.KindShedEngage)) == 0 {
		t.Fatalf("overload should journal a shed-engage event; journal = %s",
			events.Format(j.Tail(10)))
	}
	// Let the queue drain and the control loop walk the drop rate back to
	// zero: each idle step with an empty queue steps it down.
	for i := 0; i < 100 && e.Shedder().DropRate() > 0; i++ {
		e.Ingest("in", tuple(int64(i), 1))
		e.RunUntilIdle(0)
	}
	if e.Shedder().DropRate() != 0 {
		t.Fatal("drop rate never recovered to 0")
	}
	dis := eventsOfKind(j, events.KindShedDisengage)
	if len(dis) == 0 {
		t.Fatalf("recovery should journal a shed-disengage event; journal = %s",
			events.Format(j.Tail(10)))
	}
	eng := eventsOfKind(j, events.KindShedEngage)
	if eng[0].Seq >= dis[0].Seq {
		t.Error("engage must precede disengage")
	}
	if eng[0].V1 <= 0 {
		t.Errorf("engage drop probability = %v; want > 0", eng[0].V1)
	}
	if last := dis[len(dis)-1]; last.V1 != 0 {
		t.Errorf("final disengage drop probability = %v; want 0", last.V1)
	}
}

// TestSampleStatsPublishesOutputQoS: outputs with a QoS spec surface
// utility-sum and delivered counters in the stats store (the series the
// plane folds into gossiped digests); spec-less outputs stay silent.
func TestSampleStatsPublishesOutputQoS(t *testing.T) {
	spec := &qos.Spec{Latency: qos.MustGraph(
		qos.Point{X: 0, U: 1}, qos.Point{X: 1e6, U: 1}, qos.Point{X: 2e6, U: 0})}
	st := stats.NewStore(1e6, 8)
	e, _ := newVirtualEngine(t, chainNet(t, spec), Config{
		DefaultBoxCost: 10, Stats: st, StatsEvery: 1,
	})
	for i := 0; i < 100; i++ {
		e.Ingest("in", tuple(int64(i), 1))
	}
	e.Drain()
	e.SampleStats(e.Clock().Now())
	names := map[string]bool{}
	for _, n := range st.Names() {
		names[n] = true
	}
	if !names[stats.SeriesOutputUtilSum("out")] || !names[stats.SeriesOutputDelivered("out")] {
		t.Fatalf("output QoS series missing from store: %v", st.Names())
	}

	// No QoS spec: utility is constant 1, so no series is published.
	st2 := stats.NewStore(1e6, 8)
	e2, _ := newVirtualEngine(t, chainNet(t, nil), Config{Stats: st2, StatsEvery: 1})
	for i := 0; i < 10; i++ {
		e2.Ingest("in", tuple(int64(i), 1))
	}
	e2.Drain()
	e2.SampleStats(e2.Clock().Now())
	for _, n := range st2.Names() {
		if n == stats.SeriesOutputUtilSum("out") {
			t.Fatal("spec-less output must not publish utility series")
		}
	}
}

// TestDeliveredUtilityGaugeMatchesGraph is the attribution property test:
// the output.<name>.utility gauge must equal the mean of the per-tuple
// utilities the attached qos.Graphs assign to the observed latency and
// value samples — computed independently here from the delivered tuples.
func TestDeliveredUtilityGaugeMatchesGraph(t *testing.T) {
	spec := &qos.Spec{
		Latency: qos.MustGraph(
			qos.Point{X: 0, U: 1}, qos.Point{X: 5_000, U: 0.5}, qos.Point{X: 50_000, U: 0}),
		Value:      qos.MustGraph(qos.Point{X: 0, U: 0.1}, qos.Point{X: 90, U: 1}),
		ValueField: "B",
	}
	n, err := query.NewBuilder("prop").
		AddBox("f", filterSpec("true")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, spec).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newVirtualEngine(t, n, Config{DefaultBoxCost: 700})
	var wantSum float64
	var delivered int
	e.OnOutput(func(_ string, tp stream.Tuple) {
		// On the serial path the clock does not advance between the
		// monitor's observation and this callback, so the latency the
		// monitor attributed is reproducible exactly.
		lat := float64(e.Clock().Now() - tp.TS)
		wantSum += spec.Latency.Utility(lat) * spec.Value.Utility(float64(tp.Field(1).AsInt()))
		delivered++
	})
	// Vary both utility inputs: batch sizes vary queueing latency, B
	// varies value utility.
	ts := recurringTuples(11, 400)
	for i := 0; i < len(ts); {
		batch := 1 + i%17
		for j := 0; j < batch && i < len(ts); j++ {
			e.Ingest("in", ts[i])
			i++
		}
		e.RunUntilIdle(0)
	}
	e.Drain()
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	want := wantSum / float64(delivered)
	got := e.Metrics().FloatGauge("output.out.utility").Value()
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("utility gauge = %v; independent evaluation = %v (n=%d)", got, want, delivered)
	}
	// The report's mean (before loss scaling) is the same quantity.
	rep, _ := e.Output("out")
	if rep.Utility != got {
		t.Errorf("report utility = %v, gauge = %v (loss graph absent: must match)", rep.Utility, got)
	}
}

func benchIngestStepEvents(b *testing.B, on bool) {
	var spec *qos.Spec
	cfg := Config{Clock: NewVirtualClock(1)}
	if on {
		spec = &qos.Spec{Latency: qos.DefaultLatency(1e6, 1e8)}
		cfg.Journal = events.NewJournal("bench", 1024)
	}
	n, err := query.NewBuilder("ev").
		AddBox("f", filterSpec("B < 100")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, spec).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	t := tuple(1, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Ingest("in", t)
		e.Step()
	}
}

func BenchmarkEngineEventsOff(b *testing.B) { benchIngestStepEvents(b, false) }
func BenchmarkEngineEventsOn(b *testing.B)  { benchIngestStepEvents(b, true) }

// TestEventsOverheadGuard is the CI fence for the observability plane:
// with the journal configured and QoS attribution active, the per-tuple
// path must stay within 5% of the disabled configuration — the journal
// only hears from control decisions and attribution is a few float ops,
// so anything larger means the hot path grew real work. Gated behind
// CI_EVENTS_GUARD=1; best-of-3 rounds damp scheduler noise.
func TestEventsOverheadGuard(t *testing.T) {
	if os.Getenv("CI_EVENTS_GUARD") != "1" {
		t.Skip("set CI_EVENTS_GUARD=1 to run the events overhead guard")
	}
	// Warm-up round of each so one-time costs (pool priming, frequency
	// governor) hit both configurations equally, then alternating off/on
	// pairs so clock drift lands on both sides instead of skewing
	// whichever phase ran second.
	testing.Benchmark(BenchmarkEngineEventsOff)
	testing.Benchmark(BenchmarkEngineEventsOn)
	offNs, onNs := 0.0, 0.0
	for i := 0; i < 3; i++ {
		off := float64(testing.Benchmark(BenchmarkEngineEventsOff).NsPerOp())
		on := float64(testing.Benchmark(BenchmarkEngineEventsOn).NsPerOp())
		if offNs == 0 || off < offNs {
			offNs = off
		}
		if onNs == 0 || on < onNs {
			onNs = on
		}
	}
	t.Logf("journal+qos off: %.0f ns/op, on: %.0f ns/op (%.1f%%)",
		offNs, onNs, (onNs/offNs-1)*100)
	if onNs > offNs*1.05 {
		t.Fatalf("journal+QoS path %.0f ns/op exceeds 5%% over disabled %.0f ns/op", onNs, offNs)
	}
}
