//go:build race

package engine

const raceDetectorEnabled = true
