package engine

import (
	"sync"

	"repro/internal/stream"
	"repro/internal/trace"
)

// This file is the parallel wall-clock execution path: a worker pool
// where the scheduler dispatches conflict-free box trains to idle
// workers. The ownership protocol is simple and strict — a box instance
// is owned by at most one worker at a time (boxState.running, guarded by
// the dispatcher mutex), so operators stay single-threaded internally and
// each box consumes its input queues in FIFO order. Emissions are
// buffered per worker during the train and merged through the router
// while the worker still owns the box, so downstream delivery order per
// (box, port) is exactly the box's emission order. The deterministic
// virtual-clock path stays serial and byte-identical: Config.Workers with
// a VirtualClock is rejected in New, and RunParallel panics on one.

// dispatcher coordinates one RunParallel invocation. The mutex guards the
// scheduler, box ownership flags, and the idle/busy accounting; the cond
// wakes waiting workers when a train completes (possibly freeing a box or
// producing downstream work) or when Ingest delivers from outside.
type dispatcher struct {
	e     *Engine
	mu    sync.Mutex
	cond  *sync.Cond
	busy  int // workers currently executing a train
	done  bool
	steps uint64
}

// kick wakes idle workers; Ingest calls it after delivering new work.
func (d *dispatcher) kick() {
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// next picks the best (box, port, train) among boxes no worker owns,
// via the scheduler when it speaks ParallelScheduler, else a longest-
// queue fallback. Callers hold d.mu.
func (d *dispatcher) next() (*boxState, int, int) {
	free := func(b *boxState) bool { return !b.running }
	if ps, ok := d.e.sched.(ParallelScheduler); ok {
		return ps.NextFree(d.e, free)
	}
	var best *boxState
	bestPort, bestLen := 0, 0
	for _, b := range d.e.snap().boxes {
		if b.running {
			continue
		}
		for p, q := range b.inQ {
			if n := q.Len(); n > bestLen {
				best, bestPort, bestLen = b, p, n
			}
		}
	}
	if best == nil {
		return nil, 0, 0
	}
	train := bestLen
	if train > DefaultMaxTrain {
		train = DefaultMaxTrain
	}
	return best, bestPort, train
}

// pendEmit is one buffered box emission awaiting the router merge.
type pendEmit struct {
	port int
	t    stream.Tuple
}

// worker is one pool member's reusable state.
type worker struct {
	id   int // 1-based; stamped into trace stages
	pend []pendEmit
}

// workerPool recycles workers (really: their pend backing arrays) across
// RunParallel invocations, so a step-driven caller that re-enters the
// pool repeatedly does not regrow every worker's emission buffer each
// time. Returned workers have their pend cleared so a parked buffer pins
// no tuples.
var workerPool = sync.Pool{New: func() any {
	return &worker{pend: make([]pendEmit, 0, 2*DefaultMaxTrain)}
}}

func getWorker(id int) *worker {
	w := workerPool.Get().(*worker)
	w.id = id
	return w
}

func putWorker(w *worker) {
	for i := range w.pend {
		w.pend[i] = pendEmit{}
	}
	w.pend = w.pend[:0]
	workerPool.Put(w)
}

// Run executes queued work with the configured policy: the worker pool
// when Config.Workers > 1 on a wall clock, the serial loop otherwise. It
// returns the number of scheduling decisions executed.
func (e *Engine) Run() int {
	if e.workers > 1 && e.vclock == nil {
		return e.RunParallel(e.workers)
	}
	return e.RunUntilIdle(0)
}

// Workers returns the configured worker-pool size (0 or 1 means serial).
func (e *Engine) Workers() int { return e.workers }

// RunParallel drains queued work with a pool of workers and returns the
// number of trains executed. It returns when every queue is empty and
// every worker idle; tuples Ingested concurrently are picked up until
// that quiescent instant. Only one RunParallel may be in flight at a
// time, and it requires a wall clock — deterministic virtual time is
// serial by design.
func (e *Engine) RunParallel(workers int) int {
	if e.vclock != nil {
		panic("engine.RunParallel requires a wall clock: virtual time is serial by design")
	}
	if workers <= 1 {
		return e.RunUntilIdle(0)
	}
	total := 0
	for {
		d := &dispatcher{e: e}
		d.cond = sync.NewCond(&d.mu)
		if !e.disp.CompareAndSwap(nil, d) {
			panic("engine: concurrent RunParallel invocations")
		}
		var wg sync.WaitGroup
		for i := 1; i <= workers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				w := getWorker(id)
				e.runWorker(d, w)
				putWorker(w)
			}(i)
		}
		wg.Wait()
		e.disp.Store(nil)
		total += int(d.steps)
		// Quiescent: no queued work, no owner anywhere. Give time-driven
		// operators their Advance; if that emitted fresh work, run
		// another round.
		e.advanceTimeSensitive(e.clock.Now())
		if e.QueuedTuples() == 0 {
			return total
		}
	}
}

// runWorker is one pool member's loop: ask the dispatcher for a
// conflict-free train, run it, repeat; sleep when nothing is runnable but
// a peer is still busy (its merge may produce work); exit when the whole
// engine is idle.
func (e *Engine) runWorker(d *dispatcher, w *worker) {
	d.mu.Lock()
	for !d.done {
		// A requested split/unsplit gets first claim on box ownership at
		// every train boundary, so the transition wins the race against
		// re-dispatching the hot box to another worker. When the involved
		// boxes are still owned, fall through to normal dispatch — the
		// owner's completion broadcast triggers the retry.
		if e.pendTrans.Load() != nil && e.tryApplyPendingParallel(d) {
			continue
		}
		b, port, train := d.next()
		if b == nil {
			if d.busy == 0 {
				// Nothing queued and nobody running: the pool is done.
				d.done = true
				d.cond.Broadcast()
				break
			}
			d.cond.Wait()
			continue
		}
		b.running = true
		d.busy++
		d.mu.Unlock()

		e.runTrain(w, b, port, train)

		d.mu.Lock()
		b.running = false
		d.busy--
		d.steps++
		// The train may have filled downstream queues, and this box is
		// free again: let waiting workers re-evaluate.
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// runTrain executes one scheduling decision on a box the worker owns:
// pop up to train tuples, push them through the operator with emissions
// buffered per worker, advance the operator's clock obligations, then
// merge the buffered emissions through the router — all before ownership
// is released, so per-(box, port) delivery order is the box's emission
// order. It returns the number of tuples processed.
func (e *Engine) runTrain(w *worker, b *boxState, port, train int) int {
	start := e.clock.Now()
	emit := func(p int, t stream.Tuple) {
		b.outCount.Add(1)
		if t.Span == nil {
			// Derived tuples inherit the span of the tuple being
			// processed, exactly like the serial emit closure.
			t.Span = b.cur
		}
		w.pend = append(w.pend, pendEmit{port: p, t: t})
	}
	tb := getTrainBuf()
	bytes := b.inQ[port].PopTrain(tb, train)
	ts := tb.ts
	processed := len(ts)
	if processed > 0 {
		e.qBytes.Add(int64(-bytes))
		b.inCount.Add(int64(processed))
		traced := false
		waitSum := 0.0
		for i := range ts {
			waitSum += float64(start - tb.enq[i])
			if ts[i].Span != nil {
				traced = true
			}
		}
		// One EWMA update with the train's mean wait, as on the serial
		// batch path.
		b.wait.Observe(waitSum / float64(processed))
		switch {
		case traced || e.serialKernels:
			// Span inheritance threads through b.cur per tuple, so trains
			// carrying traced tuples take the per-tuple lane (tracing
			// samples a small fraction); SerialKernels forces it as the
			// hot-path guard's baseline.
			for i := range ts {
				if sp := ts[i].Span; sp != nil {
					sp.MarkReplica(trace.KindQueue, b.id, w.id, b.replica, start)
					b.cur = sp
				}
				b.inst.Process(port, ts[i], emit)
				b.cur = nil
			}
		default:
			// Batch lane: emissions collect into a pooled buffer and flush
			// in same-port runs while the box is still owned — the same
			// per-(box, port) ordering the pend merge gives the other lanes,
			// since flushes happen in emission order. Advance's emissions
			// still travel through pend below, after the flush.
			eb := getEmitBuf()
			b.eb = eb
			if b.kernel != nil {
				b.kernel.ProcessTrain(port, ts, b.collect)
			} else {
				for i := range ts {
					b.inst.Process(port, ts[i], b.collect)
				}
			}
			b.eb = nil
			e.flushEmits(b, w.id, eb, e.clock.Now())
			putEmitBuf(eb)
		}
		if b.consumes {
			// The operator neither retained nor re-emitted its inputs
			// (its emissions carry fresh Vals), so any pool-owned input
			// buffers died in this train — safe even though the emissions
			// are still pending merge.
			for i := range ts {
				ts[i].Recycle()
			}
		}
		elapsed := e.clock.Now() - start
		b.cost.Observe(float64(elapsed) / float64(processed))
		b.workNs.Add(elapsed)
		e.busyCtr.Add(elapsed)
	}
	putTrainBuf(tb)
	// Time obligations for the owned box only; other time-driven boxes
	// get theirs when a worker owns them or at pool quiescence.
	if _, ok := b.inst.(interface{ TimeDriven() }); ok {
		b.inst.Advance(e.clock.Now(), emit)
	}
	// Merge: route the buffered emissions in emission order while the box
	// is still owned.
	if len(w.pend) > 0 {
		now := e.clock.Now()
		for _, pe := range w.pend {
			e.routeEmit(b, pe.port, w.id, pe.t, now)
		}
		w.pend = w.pend[:0]
	}
	if e.shedder != nil {
		e.shedder.Control(e)
	}
	if steps := e.steps.Add(1); e.stats != nil && steps%e.statsEvery == 0 {
		now := e.clock.Now()
		e.SampleStats(now)
		e.autosplitCheck(now)
	}
	return processed
}
