package engine

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// TestOptimizedNetworkEquivalence executes the §2.3 re-optimizer's output
// against the original network on random streams: the results must be the
// same multiset (the pushdown may interleave branches differently).
func TestOptimizedNetworkEquivalence(t *testing.T) {
	base, err := query.NewBuilder("uf").
		AddBox("u", unionSpec2()).
		AddBox("f1", filterSpec("B < 70")).
		AddBox("f2", filterSpec("B < 30")).
		Connect("u", "f1").
		Connect("f1", "f2").
		BindInput("in1", tSchema, "u", 0).
		BindInput("in2", tSchema, "u", 1).
		BindOutput("out", "f2", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	opt, stats, err := query.Optimize(base, query.Selectivity{"f1": 0.7, "f2": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Changed() {
		t.Fatal("optimizer should fire on this shape")
	}

	run := func(n *query.Network) []string {
		e, err := New(n, Config{Clock: NewVirtualClock(1)})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		e.OnOutput(func(_ string, tp stream.Tuple) {
			out = append(out, stream.NewTuple(tp.Vals...).String())
		})
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 2000; i++ {
			tp := tuple(rng.Int63n(50), rng.Int63n(100))
			if i%2 == 0 {
				e.Ingest("in1", tp)
			} else {
				e.Ingest("in2", tp)
			}
		}
		e.Drain()
		sort.Strings(out)
		return out
	}
	a, b := run(base), run(opt)
	if len(a) != len(b) {
		t.Fatalf("cardinality differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func unionSpec2() op.Spec {
	return op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}
}
