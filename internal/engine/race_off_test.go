//go:build !race

package engine

// raceDetectorEnabled reports whether the race detector instruments this
// build. Allocation-count tests skip under -race: sync.Pool randomly
// drops Puts there, so allocs/op is not meaningful.
const raceDetectorEnabled = false
