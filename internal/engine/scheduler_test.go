package engine

import (
	"testing"

	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stream"
)

func TestRoundRobinVisitsAllBoxes(t *testing.T) {
	// Two parallel chains; round robin must serve both.
	n, err := query.NewBuilder("par").
		AddBox("a", filterSpec("true")).
		AddBox("b", filterSpec("true")).
		BindInput("in1", tSchema, "a", 0).
		BindInput("in2", tSchema, "b", 0).
		BindOutput("o1", "a", 0, nil).
		BindOutput("o2", "b", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newVirtualEngine(t, n, Config{Scheduler: NewRoundRobinScheduler(1)})
	counts := map[string]int{}
	e.OnOutput(func(name string, _ stream.Tuple) { counts[name]++ })
	for i := 0; i < 10; i++ {
		e.Ingest("in1", tuple(1, 1))
		e.Ingest("in2", tuple(1, 1))
	}
	// With train=1, after 2 steps both chains must have progressed.
	e.Step()
	e.Step()
	if counts["o1"] == 0 || counts["o2"] == 0 {
		t.Errorf("round robin starved a chain: %v", counts)
	}
	e.RunUntilIdle(0)
	if counts["o1"] != 10 || counts["o2"] != 10 {
		t.Errorf("final counts %v", counts)
	}
}

func TestTrainSchedulerPicksLongestQueue(t *testing.T) {
	n, err := query.NewBuilder("par").
		AddBox("short", filterSpec("true")).
		AddBox("long", filterSpec("true")).
		BindInput("in1", tSchema, "short", 0).
		BindInput("in2", tSchema, "long", 0).
		BindOutput("o1", "short", 0, nil).
		BindOutput("o2", "long", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newVirtualEngine(t, n, Config{Scheduler: NewTrainScheduler(1000)})
	counts := map[string]int{}
	e.OnOutput(func(name string, _ stream.Tuple) { counts[name]++ })
	e.Ingest("in1", tuple(1, 1))
	for i := 0; i < 50; i++ {
		e.Ingest("in2", tuple(1, 1))
	}
	e.Step() // must drain the 50-deep queue in one train
	if counts["o2"] != 50 || counts["o1"] != 0 {
		t.Errorf("train scheduler order wrong: %v", counts)
	}
}

func TestTrainSchedulerRespectsMaxTrain(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{Scheduler: NewTrainScheduler(8)})
	for i := 0; i < 20; i++ {
		e.Ingest("in", tuple(1, 1))
	}
	e.Step()
	// 20 queued, train cap 8 -> 12 remain at the filter.
	st, _ := e.Stats("f")
	if st.Queued != 12 {
		t.Errorf("queued after capped train = %d, want 12", st.Queued)
	}
}

func TestQoSSchedulerPrefersUrgentTuples(t *testing.T) {
	n, err := query.NewBuilder("par").
		AddBox("old", filterSpec("true")).
		AddBox("new", filterSpec("true")).
		BindInput("in1", tSchema, "old", 0).
		BindInput("in2", tSchema, "new", 0).
		BindOutput("o1", "old", 0, nil).
		BindOutput("o2", "new", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	vc := NewVirtualClock(1)
	e, err := New(n, Config{Clock: vc, Scheduler: NewQoSScheduler(4, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	e.OnOutput(func(name string, _ stream.Tuple) { counts[name]++ })
	e.Ingest("in1", tuple(1, 1)) // enqueued at t=1
	vc.Advance(5000)             // ages the first tuple well past the budget
	for i := 0; i < 100; i++ {
		e.Ingest("in2", tuple(1, 1)) // fresher but much longer queue
	}
	e.Step()
	if counts["o1"] != 1 {
		t.Errorf("QoS scheduler should serve the aged tuple first: %v", counts)
	}
}

func TestSchedulerDefaultsRepaired(t *testing.T) {
	if NewRoundRobinScheduler(0).Train != 1 {
		t.Error("round robin train repaired to 1")
	}
	if NewTrainScheduler(0).MaxTrain != DefaultMaxTrain {
		t.Error("train scheduler cap repaired")
	}
	q := NewQoSScheduler(0, 0)
	if q.MaxTrain != DefaultMaxTrain || q.Budget != 1e9 {
		t.Error("qos scheduler defaults repaired")
	}
}

func TestSchedulersIdleOnEmptyEngine(t *testing.T) {
	e, _ := newVirtualEngine(t, chainNet(t, nil), Config{})
	for _, s := range []Scheduler{
		NewRoundRobinScheduler(4), NewTrainScheduler(4), NewQoSScheduler(4, 100),
	} {
		if b, _, _ := s.Next(e); b != nil {
			t.Errorf("%T should report idle", s)
		}
	}
}

func TestEngineWithQoSSchedulerEndToEnd(t *testing.T) {
	spec := &qos.Spec{Latency: qos.DefaultLatency(1e6, 1e7)}
	n := chainNet(t, spec)
	e, _ := newVirtualEngine(t, n, Config{Scheduler: NewQoSScheduler(64, int64(1e6))})
	delivered := 0
	e.OnOutput(func(string, stream.Tuple) { delivered++ })
	for i := 0; i < 200; i++ {
		e.Ingest("in", tuple(int64(i), 1))
	}
	e.Drain()
	if delivered != 200 {
		t.Errorf("delivered = %d, want 200", delivered)
	}
}
