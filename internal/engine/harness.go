package engine

import "repro/internal/stream"

// Drive ingests tuples into an engine running under a VirtualClock on an
// absolute arrival schedule: tuple i arrives gap nanoseconds of virtual
// time after tuple i-1, regardless of how far processing has fallen
// behind. Between arrivals the engine executes only the work that fits.
// This is how experiments model offered load against processing capacity:
// when per-tuple work exceeds gap, the clock lags the schedule, arrivals
// bunch up, queues grow, and the overload machinery (storage spill, load
// shedding) engages.
//
// Each tuple's TS is stamped with its scheduled arrival time so latency
// QoS measures time since arrival, not time since ingest.
//
// Drive panics if the engine is not on a virtual clock. It returns the
// number of tuples accepted (not shed).
func Drive(e *Engine, input string, tuples []stream.Tuple, gap int64) int {
	return DriveSource(e, input, func() func() (stream.Tuple, int64, bool) {
		i := 0
		return func() (stream.Tuple, int64, bool) {
			if i >= len(tuples) {
				return stream.Tuple{}, 0, false
			}
			t := tuples[i]
			i++
			return t, gap, true
		}
	}())
}

// DriveSource is Drive for generator-produced tuples with per-tuple gaps
// (the wgen.Source contract): each tuple is scheduled its own gap after
// the previous one.
func DriveSource(e *Engine, input string, next func() (stream.Tuple, int64, bool)) int {
	if e.vclock == nil {
		panic("engine.DriveSource requires a VirtualClock")
	}
	accepted := 0
	arrival := e.vclock.Now()
	for {
		t, gap, ok := next()
		if !ok {
			return accepted
		}
		arrival += gap
		// Let the engine work until the virtual clock catches up with
		// this arrival; if it goes idle first, jump to the arrival.
		for e.vclock.Now() < arrival {
			if !e.Step() {
				e.vclock.AdvanceTo(arrival)
				break
			}
		}
		if t.TS == 0 {
			t.TS = arrival
		}
		if e.Ingest(input, t) {
			accepted++
		}
	}
}
