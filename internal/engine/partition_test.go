package engine

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
)

// The split/merge equivalence battery: runtime key-partitioned splits
// must be invisible in the output — exactly (multiset or sequence) where
// the operator's semantics survive sharding, and under the per-key
// combine fold agg(S) = combine(agg(S1), ..., agg(Sn)) for run-based
// windows over recurring keys. Plus the churn, scheduler, trace, and
// autosplit-controller tests. Run under -race: the mid-stream and
// parallel tests exercise the route-flip protocol concurrently.

// passFilterNet is in -> filter(pass-all) -> out: stateless, count-exact.
func passFilterNet(t *testing.T) *query.Network {
	t.Helper()
	n, err := query.NewBuilder("pf").
		AddBox("f", filterSpec("B >= 0")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// tumbleNet is in -> tumble(cnt by A on B) -> out.
func tumbleNet(t *testing.T) *query.Network {
	t.Helper()
	n, err := query.NewBuilder("tn").
		AddBox("tb", tumbleSpec()).
		BindInput("in", tSchema, "tb", 0).
		BindOutput("out", "tb", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// wsortNet is in -> wsort(by A, drain-scale timeout) -> out.
func wsortNet(t *testing.T) *query.Network {
	t.Helper()
	n, err := query.NewBuilder("wn").
		AddBox("w", op.Spec{Kind: op.KindWSort, Params: map[string]string{
			"attrs": "A", "timeout": "1000000000000"}}).
		BindInput("in", tSchema, "w", 0).
		BindOutput("out", "w", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func collectOutputs(e *Engine) *[]stream.Tuple {
	var out []stream.Tuple
	var mu sync.Mutex
	e.OnOutput(func(_ string, tp stream.Tuple) {
		mu.Lock()
		out = append(out, tp)
		mu.Unlock()
	})
	return &out
}

func tupleMultiset(ts []stream.Tuple) []string {
	out := make([]string, len(ts))
	for i, tp := range ts {
		s := ""
		for _, v := range tp.Vals {
			s += v.Format() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func sameMultiset(a, b []stream.Tuple) bool {
	x, y := tupleMultiset(a), tupleMultiset(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// perKeySum folds field 1 (the tumble result) by field 0 (the group key):
// for agg=cnt the invariant currency of the split transformation.
func perKeySum(ts []stream.Tuple) map[int64]int64 {
	out := map[int64]int64{}
	for _, tp := range ts {
		out[tp.Field(0).AsInt()] += tp.Field(1).AsInt()
	}
	return out
}

func sameFold(a, b map[int64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func recurringTuples(seed int64, n int) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = tuple(rng.Int63n(8), rng.Int63n(90))
	}
	return out
}

func monotoneRunTuples(seed int64, n int) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stream.Tuple, 0, n)
	key := int64(0)
	for len(out) < n {
		run := 1 + rng.Intn(4)
		for j := 0; j < run && len(out) < n; j++ {
			out = append(out, tuple(key, rng.Int63n(90)))
		}
		key++
	}
	return out
}

func ingestAll(e *Engine, ts []stream.Tuple) {
	for _, tp := range ts {
		e.Ingest("in", tp)
	}
}

func TestSplitBoxErrors(t *testing.T) {
	n, err := query.NewBuilder("err").
		AddBox("f", filterSpec("B >= 0")).
		AddBox("avg", op.Spec{Kind: op.KindTumble, Params: map[string]string{
			"agg": "avg", "on": "B", "groupby": "A"}}).
		Connect("f", "avg").
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "avg", 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := newVirtualEngine(t, n, Config{})
	if err := e.SplitBox("nope", 2); err == nil {
		t.Error("unknown box must refuse")
	}
	if err := e.SplitBox("f", 1); err == nil {
		t.Error("n < 2 must refuse")
	}
	if err := e.SplitBox("avg", 2); err == nil {
		t.Error("non-combinable aggregate must refuse")
	}
	if err := e.UnsplitBox("f"); err == nil {
		t.Error("unsplit of an unsplit box must refuse")
	}
	if err := e.SplitBox("f", 2); err != nil {
		t.Fatal(err)
	}
	if err := e.SplitBox("f", 2); err == nil {
		t.Error("double split must refuse")
	}
	if err := e.SplitBox("f#1", 2); err == nil {
		t.Error("splitting a replica must refuse")
	}
	if st, ok := e.BoxSplit("f"); !ok || !st.Active || len(st.Replicas) != 2 {
		t.Errorf("BoxSplit = %+v, %v; want active with 2 replicas", st, ok)
	}
}

func TestSplitFilterEquivalenceSerial(t *testing.T) {
	in := recurringTuples(7, 300)
	ref, _ := newVirtualEngine(t, passFilterNet(t), Config{})
	refOut := collectOutputs(ref)
	ingestAll(ref, in)
	ref.Drain()

	sp, _ := newVirtualEngine(t, passFilterNet(t), Config{})
	spOut := collectOutputs(sp)
	if err := sp.SplitBox("f", 3); err != nil {
		t.Fatal(err)
	}
	ingestAll(sp, in)
	sp.Drain()

	if len(*spOut) != len(in) {
		t.Fatalf("split filter delivered %d of %d tuples", len(*spOut), len(in))
	}
	if !sameMultiset(*refOut, *spOut) {
		t.Fatalf("split-3 filter output multiset diverged from serial")
	}
}

func TestSplitTumbleMonotoneKeysExact(t *testing.T) {
	in := monotoneRunTuples(11, 400)
	ref, _ := newVirtualEngine(t, tumbleNet(t), Config{})
	refOut := collectOutputs(ref)
	ingestAll(ref, in)
	ref.Drain()

	for _, k := range []int{2, 3, 4} {
		sp, _ := newVirtualEngine(t, tumbleNet(t), Config{})
		spOut := collectOutputs(sp)
		if err := sp.SplitBox("tb", k); err != nil {
			t.Fatal(err)
		}
		ingestAll(sp, in)
		sp.Drain()
		if !sameMultiset(*refOut, *spOut) {
			t.Fatalf("split-%d tumble over non-recurring keys diverged:\nref %s\ngot %s",
				k, stream.FormatTuples(*refOut), stream.FormatTuples(*spOut))
		}
	}
}

func TestSplitTumbleRecurringKeysCombineFold(t *testing.T) {
	in := recurringTuples(13, 500)
	ref, _ := newVirtualEngine(t, tumbleNet(t), Config{})
	refOut := collectOutputs(ref)
	ingestAll(ref, in)
	ref.Drain()
	refFold := perKeySum(*refOut)

	// cnt conservation: the folds must also sum to the input count.
	var total int64
	for _, v := range refFold {
		total += v
	}
	if total != int64(len(in)) {
		t.Fatalf("reference fold loses tuples: %d of %d", total, len(in))
	}

	for _, k := range []int{2, 4} {
		sp, _ := newVirtualEngine(t, tumbleNet(t), Config{})
		spOut := collectOutputs(sp)
		if err := sp.SplitBox("tb", k); err != nil {
			t.Fatal(err)
		}
		ingestAll(sp, in)
		sp.Drain()
		if !sameFold(refFold, perKeySum(*spOut)) {
			t.Fatalf("split-%d per-key combine fold diverged:\nref %v\ngot %v",
				k, refFold, perKeySum(*spOut))
		}
	}
}

func TestSplitWSortExactEquivalence(t *testing.T) {
	in := recurringTuples(17, 300)
	ref, _ := newVirtualEngine(t, wsortNet(t), Config{})
	refOut := collectOutputs(ref)
	ingestAll(ref, in)
	ref.Drain()

	sp, _ := newVirtualEngine(t, wsortNet(t), Config{})
	spOut := collectOutputs(sp)
	if err := sp.SplitBox("w", 3); err != nil {
		t.Fatal(err)
	}
	ingestAll(sp, in)
	sp.Drain()

	if !stream.TuplesEqualValues(*refOut, *spOut) {
		t.Fatalf("split wsort drain order diverged:\nref %s\ngot %s",
			stream.FormatTuples(*refOut), stream.FormatTuples(*spOut))
	}
}

// TestMidStreamSplitUnsplitNoLossNoDup drives three phases — unsplit,
// split, folded back — through a windowed aggregate with in-flight state
// at both transitions, and checks the per-key fold and total count are
// conserved against a never-split reference.
func TestMidStreamSplitUnsplitNoLossNoDup(t *testing.T) {
	in := recurringTuples(23, 600)
	ref, _ := newVirtualEngine(t, tumbleNet(t), Config{})
	refOut := collectOutputs(ref)
	ingestAll(ref, in)
	ref.Drain()

	sp, _ := newVirtualEngine(t, tumbleNet(t), Config{})
	spOut := collectOutputs(sp)
	third := len(in) / 3
	ingestAll(sp, in[:third])
	sp.RunUntilIdle(0) // leave an open window in the parent
	if err := sp.SplitBox("tb", 3); err != nil {
		t.Fatal(err)
	}
	ingestAll(sp, in[third:2*third])
	sp.RunUntilIdle(0) // leave open windows in the replicas
	if err := sp.UnsplitBox("tb"); err != nil {
		t.Fatal(err)
	}
	ingestAll(sp, in[2*third:])
	sp.Drain()

	if s, u := sp.SplitCounts(); s != 1 || u != 1 {
		t.Fatalf("SplitCounts = %d,%d want 1,1", s, u)
	}
	if !sameFold(perKeySum(*refOut), perKeySum(*spOut)) {
		t.Fatalf("mid-stream transitions broke the per-key fold:\nref %v\ngot %v",
			perKeySum(*refOut), perKeySum(*spOut))
	}
}

// TestSplitRequestAppliedAtStepBoundary pins the serial deferred path:
// RequestSplit during activity is applied by Step, not immediately.
func TestSplitRequestAppliedAtStepBoundary(t *testing.T) {
	e, _ := newVirtualEngine(t, passFilterNet(t), Config{})
	out := collectOutputs(e)
	ingestAll(e, recurringTuples(29, 100))
	e.RequestSplit("f", 2)
	if st, _ := e.BoxSplit("f"); st.Active {
		t.Fatal("request must not apply before a step boundary")
	}
	e.RunUntilIdle(0)
	if st, _ := e.BoxSplit("f"); !st.Active {
		t.Fatal("request not applied at step boundary")
	}
	e.Drain()
	if len(*out) != 100 {
		t.Fatalf("delivered %d of 100", len(*out))
	}
}

func TestDrainParksPendingTransition(t *testing.T) {
	e, _ := newVirtualEngine(t, passFilterNet(t), Config{})
	ingestAll(e, recurringTuples(31, 50))
	e.RequestSplit("f", 2)
	e.Drain()
	if st, _ := e.BoxSplit("f"); st.Active {
		t.Fatal("Drain must drop a pending split request, not apply it")
	}
	if s, _ := e.SplitCounts(); s != 0 {
		t.Fatal("no split should have executed during Drain")
	}
}

// TestSplitCachedPartitionReuse pins that oscillation reuses the built
// partition: same replica identities, no topology growth.
func TestSplitCachedPartitionReuse(t *testing.T) {
	e, _ := newVirtualEngine(t, tumbleNet(t), Config{})
	out := collectOutputs(e)
	base := len(e.snap().boxes)
	if err := e.SplitBox("tb", 2); err != nil {
		t.Fatal(err)
	}
	st1, _ := e.BoxSplit("tb")
	grown := len(e.snap().boxes)
	if grown != base+4 { // 2 replicas + WSort + combining Tumble
		t.Fatalf("split topology = %d boxes, want %d", grown, base+4)
	}
	ingestAll(e, recurringTuples(37, 100))
	e.RunUntilIdle(0)
	if err := e.UnsplitBox("tb"); err != nil {
		t.Fatal(err)
	}
	if got := len(e.snap().boxes); got != base {
		t.Fatalf("unsplit topology = %d boxes, want %d", got, base)
	}
	if err := e.SplitBox("tb", 2); err != nil {
		t.Fatal(err)
	}
	st2, _ := e.BoxSplit("tb")
	if len(e.snap().boxes) != grown {
		t.Fatal("re-split must not grow the topology beyond the first split")
	}
	for i := range st1.Replicas {
		if st1.Replicas[i] != st2.Replicas[i] {
			t.Fatalf("replica ids not stable across cycles: %v vs %v", st1.Replicas, st2.Replicas)
		}
	}
	ingestAll(e, recurringTuples(41, 100))
	e.Drain()
	var total int64
	for _, v := range perKeySum(*out) {
		total += v
	}
	if total != 200 {
		t.Fatalf("cnt conservation across cycles: %d of 200", total)
	}
}

// TestSchedulersDispatchReplicasIndependently is the regression for the
// scheduler audit: two replicas of one split box must be dispatchable to
// two workers simultaneously — when one replica is owned, NextFree must
// offer the other, not stall on the shared parent. Before the topology
// snapshot conversion, runtime-attached replicas were invisible to every
// scheduler.
func TestSchedulersDispatchReplicasIndependently(t *testing.T) {
	build := func() *Engine {
		e, _ := newVirtualEngine(t, tumbleNet(t), Config{})
		if err := e.SplitBox("tb", 2); err != nil {
			t.Fatal(err)
		}
		r1 := e.snap().byID["tb#1"]
		r2 := e.snap().byID["tb#2"]
		for i := 0; i < 4; i++ {
			r1.inQ[0].Push(tuple(1, 1), 0)
			r2.inQ[0].Push(tuple(2, 1), 0)
		}
		return e
	}
	free := func(b *boxState) bool { return !b.running }
	scheds := map[string]func() ParallelScheduler{
		"roundrobin": func() ParallelScheduler { return NewRoundRobinScheduler(8) },
		"train":      func() ParallelScheduler { return NewTrainScheduler(8) },
		"qos":        func() ParallelScheduler { return NewQoSScheduler(8, 1e6) },
	}
	for name, mk := range scheds {
		e := build()
		s := mk()
		b1, _, _ := s.NextFree(e, free)
		if b1 == nil || (b1.id != "tb#1" && b1.id != "tb#2") {
			t.Fatalf("%s: first pick = %v, want a replica of tb", name, b1)
		}
		b1.running = true // worker 1 holds the first replica
		b2, _, n := s.NextFree(e, free)
		if b2 == nil || b2 == b1 {
			t.Fatalf("%s: second pick = %v with %q owned; want the sibling replica", name, b2, b1.id)
		}
		if b2.parentID != "tb" || b2.replica == 0 {
			t.Fatalf("%s: second pick %q is not a replica of tb", name, b2.id)
		}
		if n < 1 {
			t.Fatalf("%s: zero train for a non-empty replica queue", name)
		}
	}
}

// plainSched hides the ParallelScheduler interface so the dispatcher's
// longest-queue fallback is what gets exercised.
type plainSched struct{ inner Scheduler }

func (p plainSched) Next(e *Engine) (*boxState, int, int) { return p.inner.Next(e) }

func TestDispatcherFallbackDispatchesReplicas(t *testing.T) {
	e, _ := newVirtualEngine(t, tumbleNet(t), Config{})
	e.sched = plainSched{inner: NewTrainScheduler(8)}
	if err := e.SplitBox("tb", 2); err != nil {
		t.Fatal(err)
	}
	r1 := e.snap().byID["tb#1"]
	r2 := e.snap().byID["tb#2"]
	for i := 0; i < 4; i++ {
		r1.inQ[0].Push(tuple(1, 1), 0)
		r2.inQ[0].Push(tuple(2, 1), 0)
	}
	d := &dispatcher{e: e}
	b1, _, _ := d.next()
	if b1 == nil || b1.parentID != "tb" {
		t.Fatalf("fallback first pick = %v, want a replica", b1)
	}
	b1.running = true
	b2, _, _ := d.next()
	if b2 == nil || b2 == b1 || b2.parentID != "tb" {
		t.Fatalf("fallback second pick = %v with %q owned; want the sibling replica", b2, b1.id)
	}
}

// TestSplitTraceReplicaAttribution pins replica attribution end to end:
// span stages carry the shard ordinal, and Complete copies it into the
// flight-recorder events.
func TestSplitTraceReplicaAttribution(t *testing.T) {
	rec := trace.NewRecorder(256)
	tr := trace.NewTracer("n1", 1, rec)
	e, vc := newVirtualEngine(t, tumbleNet(t), Config{Tracer: tr})
	if err := e.SplitBox("tb", 2); err != nil {
		t.Fatal(err)
	}
	spans := make([]*trace.Span, 0, 8)
	for i := int64(0); i < 8; i++ {
		tp := tuple(i, 1)
		tp.TS = vc.Now()
		tp.Span = tr.Sample(tp.TS)
		spans = append(spans, tp.Span)
		e.Ingest("in", tp)
	}
	// Advance virtual time so the replicas' queue segments have nonzero
	// duration (zero-length segments record no stage).
	e.AdvanceTime(5000)
	e.RunUntilIdle(0)
	found := 0
	for _, sp := range spans {
		for _, st := range sp.Stages {
			if st.Replica > 0 {
				if st.Name != "tb#1" && st.Name != "tb#2" {
					t.Fatalf("replica stage on non-replica box %q", st.Name)
				}
				found++
			}
		}
	}
	if found == 0 {
		t.Fatal("no span stage carried a replica ordinal")
	}
	// Completion must carry Replica into recorder events.
	now := vc.Now()
	for _, sp := range spans {
		tr.Complete(sp, "out", now)
	}
	evFound := false
	for _, ev := range rec.Events() {
		if ev.Replica > 0 {
			evFound = true
			if ev.Name != "tb#1" && ev.Name != "tb#2" {
				t.Fatalf("event replica=%d on %q", ev.Replica, ev.Name)
			}
		}
	}
	if !evFound {
		t.Fatal("no recorder event carried a replica ordinal")
	}
}

// TestParallelSplitPhases alternates split and unsplit across parallel
// pool rounds: each pending request is applied at a train boundary by the
// pool itself, and the output stays count- and multiset-exact. Run under
// -race: this exercises the claim protocol and the route flip against
// worker dispatch.
func TestParallelSplitPhases(t *testing.T) {
	engineLeakGuard(t)
	e := newWallEngine(t, passFilterNet(t), Config{Workers: 4})
	out := collectOutputs(e)
	in := recurringTuples(43, 1200)
	phase := len(in) / 6
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			e.RequestSplit("f", 3)
		} else {
			e.RequestUnsplit("f")
		}
		ingestAll(e, in[i*phase:(i+1)*phase])
		e.RunParallel(4)
	}
	e.Drain()
	if len(*out) != len(in) {
		t.Fatalf("delivered %d of %d across split phases", len(*out), len(in))
	}
	if !sameMultiset(in, *out) {
		t.Fatal("phase-alternating split/unsplit lost or duplicated tuples")
	}
	s, u := e.SplitCounts()
	if s != 3 || u != 3 { // six phases alternating split-first
		t.Fatalf("SplitCounts = %d,%d want 3,3", s, u)
	}
}

// TestSplitUnsplitChurn is the randomized churn test: seeded load
// oscillation with concurrent ingest, a controller goroutine firing
// split/unsplit requests at random, and the worker pool applying them at
// train boundaries. The invariant is total conservation: every ingested
// tuple surfaces exactly once. Run under -race.
func TestSplitUnsplitChurn(t *testing.T) {
	engineLeakGuard(t)
	e := newWallEngine(t, passFilterNet(t), Config{Workers: 4})
	out := collectOutputs(e)
	const total = 3000
	var ingested atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // seeded oscillating ingest load
		defer wg.Done()
		rng := rand.New(rand.NewSource(47))
		for i := 0; i < total; {
			burst := 20 + rng.Intn(180) // oscillate between light and heavy
			for j := 0; j < burst && i < total; j++ {
				e.Ingest("in", tuple(rng.Int63n(8), rng.Int63n(90)))
				i++
				ingested.Add(1)
			}
			time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
		}
	}()

	wg.Add(1)
	go func() { // seeded split/unsplit churn
		defer wg.Done()
		rng := rand.New(rand.NewSource(53))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if rng.Intn(2) == 0 {
				e.RequestSplit("f", 2+rng.Intn(3))
			} else {
				e.RequestUnsplit("f")
			}
			time.Sleep(time.Duration(50+rng.Intn(400)) * time.Microsecond)
		}
	}()

	for ingested.Load() < total || e.QueuedTuples() > 0 {
		e.RunParallel(4)
	}
	close(stop)
	wg.Wait()
	e.Drain()
	if len(*out) != total {
		t.Fatalf("churn lost or duplicated tuples: delivered %d of %d", len(*out), total)
	}
}

// TestAutoSplitHotBoxLifecycle drives the controller end to end on the
// serial wall-clock path: a standing backlog behind a splittable box
// trips the hot predicate and splits it; a subsequent idle trickle trips
// the cool predicate and folds it back. Output conservation holds across
// both transitions.
func TestAutoSplitHotBoxLifecycle(t *testing.T) {
	e := newWallEngine(t, passFilterNet(t), Config{
		StatsEvery: 1,
		AutoSplit: &AutoSplitConfig{
			Replicas: 2,
			WindowNs: int64(200 * time.Microsecond),
			HoldHot:  1,
			HoldCool: 1,
			Hot: stats.HotSpec{
				WorkFrac: 0.001, // any measurable work while backlogged is "hot"
				CoolFrac: 0.9,
				MinQueue: 1,
				Windows:  1,
			},
		},
	})
	if e.StatsStore() == nil {
		t.Fatal("AutoSplit must provision a private stats store")
	}
	out := collectOutputs(e)
	sent := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s, _ := e.SplitCounts(); s >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never split the hot box (store=%v)", e.StatsStore().Names())
		}
		ingestAll(e, recurringTuples(int64(sent), 2000))
		sent += 2000
		e.RunUntilIdle(0)
	}
	// Cool down: trickle single tuples so the controller keeps sampling
	// while the replicas sit idle.
	for {
		if _, u := e.SplitCounts(); u >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("controller never folded the split back")
		}
		e.Ingest("in", tuple(1, 1))
		sent++
		e.RunUntilIdle(0)
		time.Sleep(300 * time.Microsecond)
	}
	if st, _ := e.BoxSplit("f"); st.Active {
		t.Fatal("box still split after fold-back")
	}
	e.Drain()
	if len(*out) != sent {
		t.Fatalf("autosplit lifecycle lost tuples: %d of %d", len(*out), sent)
	}
}
