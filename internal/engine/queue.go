package engine

import (
	"sync"

	"repro/internal/stream"
)

// entry is one queued tuple plus the time it entered the queue, so the
// engine can measure per-box queueing delay — TB in §7.1 "implicitly
// includes any queuing time".
type entry struct {
	t   stream.Tuple
	enq int64
}

// minQueueCap is the smallest ring a queue keeps; Pop shrinks back toward
// it so a one-off burst does not pin peak capacity forever.
const minQueueCap = 8

// entryQueue is a growable-and-shrinkable FIFO ring of entries with byte
// accounting, mirroring stream.Queue but carrying enqueue timestamps. All
// operations are mutex-guarded: in parallel mode the owning worker pops
// while upstream workers and external Ingest goroutines push, and the
// handover through the lock is what gives span marks and tuple state their
// happens-before edge between boxes.
type entryQueue struct {
	mu    sync.Mutex
	buf   []entry
	head  int
	count int
	bytes int
}

func newEntryQueue() *entryQueue { return &entryQueue{buf: make([]entry, minQueueCap)} }

func (q *entryQueue) Len() int {
	q.mu.Lock()
	n := q.count
	q.mu.Unlock()
	return n
}

func (q *entryQueue) Bytes() int {
	q.mu.Lock()
	b := q.bytes
	q.mu.Unlock()
	return b
}

// Cap returns the current ring capacity (for the shrink regression test).
func (q *entryQueue) Cap() int {
	q.mu.Lock()
	c := len(q.buf)
	q.mu.Unlock()
	return c
}

// OldestEnq returns the enqueue time of the tuple at the head, for the
// QoS scheduler's urgency computation.
func (q *entryQueue) OldestEnq() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return 0, false
	}
	return q.buf[q.head].enq, true
}

// ForEach visits every queued entry oldest-first under the queue lock.
func (q *entryQueue) ForEach(fn func(entry)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := 0; i < q.count; i++ {
		fn(q.buf[(q.head+i)%len(q.buf)])
	}
}

func (q *entryQueue) Push(t stream.Tuple, now int64) {
	q.mu.Lock()
	if q.count == len(q.buf) {
		q.resize(len(q.buf) * 2)
	}
	q.buf[(q.head+q.count)%len(q.buf)] = entry{t: t, enq: now}
	q.count++
	q.bytes += t.MemSize()
	q.mu.Unlock()
}

func (q *entryQueue) Pop() (entry, bool) {
	q.mu.Lock()
	if q.count == 0 {
		q.mu.Unlock()
		return entry{}, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = entry{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.bytes -= e.t.MemSize()
	// Shrink once occupancy falls below a quarter of capacity so a burst
	// does not pin its peak ring for the rest of the process lifetime.
	if len(q.buf) > minQueueCap && q.count < len(q.buf)/4 {
		nc := len(q.buf) / 2
		if nc < minQueueCap {
			nc = minQueueCap
		}
		q.resize(nc)
	}
	q.mu.Unlock()
	return e, true
}

// resize moves the ring into a buffer of capacity nc >= count; callers
// hold q.mu.
func (q *entryQueue) resize(nc int) {
	nb := make([]entry, nc)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
