package engine

import (
	"sync"

	"repro/internal/stream"
)

// entry is one queued tuple plus the time it entered the queue, so the
// engine can measure per-box queueing delay — TB in §7.1 "implicitly
// includes any queuing time". size caches the tuple's MemSize at push
// time, so the byte accounting walks the value slice once per hop
// instead of once per queue operation.
type entry struct {
	t    stream.Tuple
	enq  int64
	size int
}

// minQueueCap is the smallest ring a queue keeps; Pop shrinks back toward
// it so a one-off burst does not pin peak capacity forever.
const minQueueCap = 8

// entryQueue is a growable-and-shrinkable FIFO ring of entries with byte
// accounting, mirroring stream.Queue but carrying enqueue timestamps. All
// operations are mutex-guarded: in parallel mode the owning worker pops
// while upstream workers and external Ingest goroutines push, and the
// handover through the lock is what gives span marks and tuple state their
// happens-before edge between boxes.
type entryQueue struct {
	mu    sync.Mutex
	buf   []entry
	head  int
	count int
	bytes int
}

func newEntryQueue() *entryQueue { return &entryQueue{buf: make([]entry, minQueueCap)} }

func (q *entryQueue) Len() int {
	q.mu.Lock()
	n := q.count
	q.mu.Unlock()
	return n
}

func (q *entryQueue) Bytes() int {
	q.mu.Lock()
	b := q.bytes
	q.mu.Unlock()
	return b
}

// Cap returns the current ring capacity (for the shrink regression test).
func (q *entryQueue) Cap() int {
	q.mu.Lock()
	c := len(q.buf)
	q.mu.Unlock()
	return c
}

// OldestEnq returns the enqueue time of the tuple at the head, for the
// QoS scheduler's urgency computation.
func (q *entryQueue) OldestEnq() (int64, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return 0, false
	}
	return q.buf[q.head].enq, true
}

// ForEach visits every queued entry oldest-first under the queue lock.
func (q *entryQueue) ForEach(fn func(entry)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := 0; i < q.count; i++ {
		fn(q.buf[(q.head+i)%len(q.buf)])
	}
}

func (q *entryQueue) Push(t stream.Tuple, now int64) {
	q.PushSized(t, now, t.MemSize())
}

// PushSized is Push with the tuple's MemSize already computed — the
// delivery path measures it for spill accounting anyway, so the queue
// need not walk the value slice a second time.
func (q *entryQueue) PushSized(t stream.Tuple, now int64, size int) {
	q.mu.Lock()
	if q.count == len(q.buf) {
		q.resize(len(q.buf) * 2)
	}
	q.buf[(q.head+q.count)%len(q.buf)] = entry{t: t, enq: now, size: size}
	q.count++
	q.bytes += size
	q.mu.Unlock()
}

func (q *entryQueue) Pop() (entry, bool) {
	q.mu.Lock()
	if q.count == 0 {
		q.mu.Unlock()
		return entry{}, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = entry{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.bytes -= e.size
	// Shrink once occupancy falls below a quarter of capacity so a burst
	// does not pin its peak ring for the rest of the process lifetime.
	if len(q.buf) > minQueueCap && q.count < len(q.buf)/4 {
		nc := len(q.buf) / 2
		if nc < minQueueCap {
			nc = minQueueCap
		}
		q.resize(nc)
	}
	q.mu.Unlock()
	return e, true
}

// PopTrain moves up to max entries into tb under one lock acquisition —
// the batch path's counterpart of a per-tuple Pop loop, which paid a
// lock round-trip and a shrink check per tuple. It returns the total
// bytes removed; the tuples land in tb.ts with their enqueue times
// parallel in tb.enq.
func (q *entryQueue) PopTrain(tb *trainBuf, max int) int {
	q.mu.Lock()
	n := q.count
	if n > max {
		n = max
	}
	bytes := 0
	for i := 0; i < n; i++ {
		en := q.buf[q.head]
		q.buf[q.head] = entry{}
		q.head = (q.head + 1) % len(q.buf)
		tb.ts = append(tb.ts, en.t)
		tb.enq = append(tb.enq, en.enq)
		bytes += en.size
	}
	q.count -= n
	q.bytes -= bytes
	// Shrink only when the queue empties, and then in one hop to the
	// floor. Pop's mid-drain halving is wrong at train rate: a deep
	// queue draining by one train per step crosses the quarter-occupancy
	// threshold over and over as pushes refill it, and each crossing
	// pays a multi-megabyte makeslice-plus-copy on a burst-deep ring. An
	// empty ring collapses for the cost of one floor-sized allocation,
	// and any engine that drains (they all do) returns burst memory then.
	if floor := 2 * DefaultMaxTrain; q.count == 0 && len(q.buf) > floor {
		q.buf = make([]entry, floor)
		q.head = 0
	}
	q.mu.Unlock()
	return bytes
}

// PushTrain enqueues a whole same-destination emission run under one
// lock acquisition, growing the ring at most once. Entry sizes are
// computed under the lock — the single MemSize walk per hop that Push's
// callers would otherwise do outside — and the total is returned for the
// caller's byte accounting.
func (q *entryQueue) PushTrain(ts []stream.Tuple, now int64) int {
	q.mu.Lock()
	if need := q.count + len(ts); need > len(q.buf) {
		nc := len(q.buf) * 2
		for nc < need {
			nc *= 2
		}
		q.resize(nc)
	}
	total := 0
	for i := range ts {
		size := ts[i].MemSize()
		q.buf[(q.head+q.count)%len(q.buf)] = entry{t: ts[i], enq: now, size: size}
		q.count++
		total += size
	}
	q.bytes += total
	q.mu.Unlock()
	return total
}

// emitBuf collects one train's emissions so the router can move them in
// same-port runs: one clock read, one downstream queue lock, one byte-
// accounting update per run instead of per tuple. Pooled like trainBuf.
type emitBuf struct {
	ts    []stream.Tuple
	ports []int
}

func (eb *emitBuf) add(p int, t stream.Tuple) {
	eb.ts = append(eb.ts, t)
	eb.ports = append(eb.ports, p)
}

var emitBufPool = sync.Pool{New: func() any {
	return &emitBuf{
		ts:    make([]stream.Tuple, 0, DefaultMaxTrain),
		ports: make([]int, 0, DefaultMaxTrain),
	}
}}

func getEmitBuf() *emitBuf { return emitBufPool.Get().(*emitBuf) }

func putEmitBuf(eb *emitBuf) {
	for i := range eb.ts {
		eb.ts[i] = stream.Tuple{}
	}
	eb.ts, eb.ports = eb.ts[:0], eb.ports[:0]
	emitBufPool.Put(eb)
}

// trainBuf is the reusable scratch a train is popped into. Buffers cycle
// through a sync.Pool sized for the default train, so the steady-state
// train path allocates nothing; putTrainBuf clears the tuple slots so a
// parked buffer pins neither Vals backing arrays nor trace spans.
type trainBuf struct {
	ts  []stream.Tuple
	enq []int64
}

var trainBufPool = sync.Pool{New: func() any {
	return &trainBuf{
		ts:  make([]stream.Tuple, 0, DefaultMaxTrain),
		enq: make([]int64, 0, DefaultMaxTrain),
	}
}}

func getTrainBuf() *trainBuf { return trainBufPool.Get().(*trainBuf) }

func putTrainBuf(tb *trainBuf) {
	for i := range tb.ts {
		tb.ts[i] = stream.Tuple{}
	}
	tb.ts, tb.enq = tb.ts[:0], tb.enq[:0]
	trainBufPool.Put(tb)
}

// resize moves the ring into a buffer of capacity nc >= count; callers
// hold q.mu.
func (q *entryQueue) resize(nc int) {
	nb := make([]entry, nc)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
