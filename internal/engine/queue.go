package engine

import "repro/internal/stream"

// entry is one queued tuple plus the time it entered the queue, so the
// engine can measure per-box queueing delay — TB in §7.1 "implicitly
// includes any queuing time".
type entry struct {
	t   stream.Tuple
	enq int64
}

// entryQueue is a growable FIFO ring of entries with byte accounting,
// mirroring stream.Queue but carrying enqueue timestamps.
type entryQueue struct {
	buf   []entry
	head  int
	count int
	bytes int
}

func newEntryQueue() *entryQueue { return &entryQueue{buf: make([]entry, 8)} }

func (q *entryQueue) Len() int   { return q.count }
func (q *entryQueue) Bytes() int { return q.bytes }

func (q *entryQueue) Push(t stream.Tuple, now int64) {
	if q.count == len(q.buf) {
		nb := make([]entry, len(q.buf)*2)
		for i := 0; i < q.count; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.count)%len(q.buf)] = entry{t: t, enq: now}
	q.count++
	q.bytes += t.MemSize()
}

func (q *entryQueue) Pop() (entry, bool) {
	if q.count == 0 {
		return entry{}, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = entry{}
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.bytes -= e.t.MemSize()
	return e, true
}
