package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stream"
)

// ShedMode selects the drop policy.
type ShedMode int

const (
	// ShedRandom drops uniformly at random with the controlled rate — the
	// baseline policy.
	ShedRandom ShedMode = iota
	// ShedQoS drops the lowest-utility tuples first, using the
	// value-based QoS graph over an input expression — "if tuples must be
	// dropped, QoS specifications can be used to determine which and how
	// many" (§7.1).
	ShedQoS
)

// ShedConfig configures the Load Shedder of Fig 3.
type ShedConfig struct {
	Mode ShedMode
	// QueueHigh and QueueLow are the queued-tuple thresholds that raise
	// and lower the drop rate (hysteresis band). Defaults: 2048 / 512.
	QueueHigh int
	QueueLow  int
	// StepUp/StepDown adjust the drop probability per control decision.
	// Defaults: +0.05 / -0.02.
	StepUp   float64
	StepDown float64
	// MaxDrop caps the drop probability (default 0.9).
	MaxDrop float64
	// ValueExpr scores a tuple (ShedQoS only); evaluated on input tuples.
	ValueExpr string
	// ValueGraph maps the score to utility (ShedQoS only).
	ValueGraph *qos.Graph
	// InputSchema resolves ValueExpr (ShedQoS only): name of the network
	// input whose schema the expression binds against.
	InputSchema string
	// Seed makes random drops reproducible.
	Seed int64
}

// Shedder implements QoS-driven load shedding: a control loop raises a
// drop rate while queues exceed the high threshold and lowers it below
// the low threshold; the drop policy then decides which tuples go.
// Shedding happens at ingest, before any processing is invested in a
// tuple — the cheapest place to discard (§2.3).
type Shedder struct {
	cfg ShedConfig

	// mu guards the control-loop and policy state (rng, drop rate, value
	// ring): in parallel mode ShouldDrop runs on ingest goroutines while
	// Control runs on workers. The counters are atomic so telemetry
	// (/metrics, SampleStats, dspstat) reads a consistent snapshot without
	// taking the policy lock.
	mu        sync.Mutex
	rng       *rand.Rand
	dropP     float64
	engaged   bool // dropP > 0 last Control decision (journal edge detect)
	valueExpr op.Expr
	values    []float64 // ring of recent value-utilities for quantiles
	valuePos  int
	threshold float64

	dropped   atomic.Uint64
	inspected atomic.Uint64
}

// NewShedder builds a shedder; for ShedQoS the value expression is bound
// against the named input's schema.
func NewShedder(cfg ShedConfig, net *query.Network) (*Shedder, error) {
	if cfg.QueueHigh <= 0 {
		cfg.QueueHigh = 2048
	}
	if cfg.QueueLow <= 0 || cfg.QueueLow >= cfg.QueueHigh {
		cfg.QueueLow = cfg.QueueHigh / 4
	}
	if cfg.StepUp <= 0 {
		cfg.StepUp = 0.05
	}
	if cfg.StepDown <= 0 {
		cfg.StepDown = 0.02
	}
	if cfg.MaxDrop <= 0 || cfg.MaxDrop > 1 {
		cfg.MaxDrop = 0.9
	}
	s := &Shedder{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		values: make([]float64, 0, 512),
	}
	if cfg.Mode == ShedQoS {
		if cfg.ValueGraph == nil || cfg.ValueExpr == "" || cfg.InputSchema == "" {
			return nil, fmt.Errorf("shedder: ShedQoS requires ValueExpr, ValueGraph, InputSchema")
		}
		in, ok := net.Inputs()[cfg.InputSchema]
		if !ok {
			return nil, fmt.Errorf("shedder: unknown input %q", cfg.InputSchema)
		}
		e, err := op.Parse(cfg.ValueExpr)
		if err != nil {
			return nil, fmt.Errorf("shedder: %w", err)
		}
		if err := e.Bind(in.Schema); err != nil {
			return nil, fmt.Errorf("shedder: %w", err)
		}
		s.valueExpr = e
	}
	return s, nil
}

// Control adjusts the drop rate from queue occupancy (called by the
// engine after every step). Transitions of the drop rate across zero —
// the shedder engaging and disengaging — are journaled with the queue
// depth and cumulative drop count as evidence.
func (s *Shedder) Control(e *Engine) {
	q := e.QueuedTuples()
	s.mu.Lock()
	switch {
	case q > s.cfg.QueueHigh:
		s.dropP += s.cfg.StepUp
		if s.dropP > s.cfg.MaxDrop {
			s.dropP = s.cfg.MaxDrop
		}
	case q < s.cfg.QueueLow && s.dropP > 0:
		s.dropP -= s.cfg.StepDown
		if s.dropP < 0 {
			s.dropP = 0
		}
	}
	engaged := s.dropP > 0
	edge := engaged != s.engaged
	s.engaged = engaged
	dropP := s.dropP
	s.mu.Unlock()
	if edge && e.journal != nil {
		kind := events.KindShedEngage
		if !engaged {
			kind = events.KindShedDisengage
		}
		// V1 = drop probability, V2 = queued tuples, V3 = cumulative drops.
		e.journal.Append(events.Event{
			Time: e.clock.Now(), Kind: kind, Subject: "shedder",
			V1: dropP, V2: float64(q), V3: float64(s.dropped.Load()),
		})
	}
}

// ShouldDrop decides one tuple's fate at ingest.
func (s *Shedder) ShouldDrop(e *Engine, input string, t stream.Tuple) bool {
	inspected := s.inspected.Add(1)
	s.mu.Lock()
	if s.dropP <= 0 {
		s.mu.Unlock()
		return false
	}
	drop := false
	switch s.cfg.Mode {
	case ShedRandom:
		drop = s.rng.Float64() < s.dropP
	case ShedQoS:
		if input != s.cfg.InputSchema {
			drop = s.rng.Float64() < s.dropP
			break
		}
		u := s.cfg.ValueGraph.Utility(s.valueExpr.Eval(t).AsFloat())
		s.observeValue(u, inspected)
		// Drop the tuples in the lowest dropP quantile of recent value
		// utility: same volume shed as random, but the cheapest tuples.
		drop = u <= s.threshold
	}
	s.mu.Unlock()
	if drop {
		s.dropped.Add(1)
	}
	return drop
}

// observeValue maintains the rolling value-utility sample and refreshes
// the drop threshold to the dropP-quantile every 128 observations;
// callers hold s.mu.
func (s *Shedder) observeValue(u float64, inspected uint64) {
	if len(s.values) < cap(s.values) {
		s.values = append(s.values, u)
	} else {
		s.values[s.valuePos] = u
		s.valuePos = (s.valuePos + 1) % len(s.values)
	}
	if len(s.values) >= 32 && inspected%128 == 0 {
		tmp := append([]float64(nil), s.values...)
		sort.Float64s(tmp)
		idx := int(s.dropP * float64(len(tmp)))
		if idx >= len(tmp) {
			idx = len(tmp) - 1
		}
		s.threshold = tmp[idx]
	}
}

// DropRate returns the current controlled drop probability.
func (s *Shedder) DropRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropP
}

// Dropped returns how many tuples the shedder has discarded.
func (s *Shedder) Dropped() uint64 { return s.dropped.Load() }

// Inspected returns how many tuples the shedder has examined at ingest.
func (s *Shedder) Inspected() uint64 { return s.inspected.Load() }
