package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Config tunes one engine instance.
type Config struct {
	// Clock supplies time; nil means WallClock. Pass a *VirtualClock for
	// deterministic experiments: the engine then advances it by the
	// modeled cost of every box execution.
	Clock Clock
	// Scheduler decides which box to run and the train size; nil means
	// NewTrainScheduler(DefaultMaxTrain).
	Scheduler Scheduler
	// MemoryBudget bounds total queue memory in bytes before the storage
	// manager counts spill (0 means 64 MiB).
	MemoryBudget int
	// DefaultBoxCost is the modeled per-tuple processing cost in ns under
	// a virtual clock (0 means 1000 ns).
	DefaultBoxCost int64
	// BoxCosts overrides the modeled cost for specific boxes.
	BoxCosts map[string]int64
	// Shed configures the load shedder; nil disables shedding.
	Shed *ShedConfig
	// Tracer samples ingested tuples for causal latency tracing; nil
	// disables tracing (the hot path then pays only nil checks).
	Tracer *trace.Tracer
	// Stats receives windowed samples of the monitored statistics of §7.1
	// (per-box cost, selectivity, queue depth, cumulative work, drops);
	// nil disables sampling and the hot path pays only a nil check.
	Stats *stats.Store
	// StatsEvery samples Stats every N scheduling steps (0 means 64).
	StatsEvery int
	// Workers enables the parallel wall-clock execution path: Run then
	// drives a pool of this many workers instead of the serial loop
	// (RunParallel). Workers > 0 with a VirtualClock is a configuration
	// error — deterministic virtual time is serial by design, so netsim
	// experiments stay byte-identical.
	Workers int
	// Journal receives structured control-plane events: split/unsplit
	// transitions with the hot-box evidence that triggered them, shedder
	// engage/disengage with drop counts. Nil disables journaling; the
	// hot path then pays nothing (events are only emitted from control
	// decisions, never per tuple).
	Journal *events.Journal
	// SLO enables the latency-SLO plane: per-output delivered-latency
	// sketches recorded per delivery and published to the stats plane,
	// tail attribution over traced spans, and the QoS-headroom forecaster
	// that journals an early warning before an output's p99 crosses its
	// latency cliff. When SLO is set and Stats is nil, the engine creates
	// a private store (as AutoSplit does). Nil disables the whole plane;
	// delivery then pays only a nil check.
	SLO *SLOConfig
	// AutoSplit enables the runtime hot-box controller: the engine
	// watches the stats plane for a box burning a disproportionate share
	// of a core behind a backlog, splits it into key-sharded replicas,
	// and folds it back when load subsides. Nil disables the controller;
	// explicit SplitBox/UnsplitBox calls work either way. When AutoSplit
	// is set and Stats is nil, the engine creates a private store sized
	// by AutoSplitConfig.WindowNs.
	AutoSplit *AutoSplitConfig
	// CPSpill supplies a disk spill for each connection-point history (the
	// Storage Manager's paging of §2.3): called once per marked arc source
	// port at construction, it may return nil to leave that point
	// memory-only. Nil disables spilling entirely — history past the
	// memory budget is then dropped (and counted) as before.
	CPSpill func(p query.Port) stream.Spill
	// SerialKernels forces per-tuple operator dispatch (Process) even for
	// operators exposing a batch kernel, reproducing the pre-batching
	// execution path. It exists for the CI hot-path guard and for
	// debugging kernel/serial divergence; production configs leave it
	// false. The deterministic virtual-clock path is always serial.
	SerialKernels bool
}

// OutputFn receives tuples delivered to a named application output.
type OutputFn func(name string, t stream.Tuple)

// Engine executes one node's piece of an Aurora query network. The serial
// path (Step/RunUntilIdle) executes one scheduler decision at a time, per
// the paper's run-time model; under a wall clock the engine can instead
// run a worker pool (RunParallel) where the scheduler dispatches
// conflict-free box trains to idle workers — a box instance is owned by
// at most one worker at a time, so operators stay single-threaded
// internally. Ingest is safe to call concurrently with either path; the
// serial control methods (Step, RunUntilIdle, Drain) must not themselves
// be called from multiple goroutines at once.
type Engine struct {
	net    *query.Network
	clock  Clock
	vclock *VirtualClock
	sched  Scheduler

	// snapPtr is the atomically swapped topology snapshot: every
	// iteration over the engine's boxes (schedulers, stats sampling,
	// drains, queue accounting) loads it once and walks an immutable
	// slice, so runtime split/merge transitions can grow and shrink the
	// box set without racing readers. topoMu serializes the swaps and
	// the split/unsplit transitions themselves.
	snapPtr atomic.Pointer[topoSnap]
	topoMu  sync.Mutex
	outputs map[string]*outputState
	inputs  map[string][]route
	defCost int64

	storage *Storage
	monitor *Monitor
	shedder *Shedder
	reg     *metrics.Registry

	tracer  *trace.Tracer
	journal *events.Journal // nil-safe: a nil journal drops appends
	// Component histograms for completed traces, cached off the registry
	// so the delivery path pays no map lookups. Nil when tracing is off.
	traceQ, traceP, traceN  *metrics.Histogram
	ingCtr, shedCtr, delCtr *metrics.Counter

	// Statistics plane (nil when disabled): the windowed store sampled
	// every statsEvery steps, and the cumulative busy-time counter that
	// wall-clock utilization is differenced from.
	stats      *stats.Store
	statsEvery uint64
	steps      atomic.Uint64
	busyCtr    *metrics.Counter
	// Per-input shed-drop counters, one per destination box, so shedding
	// is attributable: dropping at ingest starves exactly these boxes.
	shedByInput map[string][]*metrics.Counter

	// Connection points (§2.2): predetermined arcs where recent history
	// is retained so ad hoc queries can attach later. The cpHist map is
	// immutable after New (box states cache their ports' histories, so
	// the emit hot path never touches the map); cpMu guards each
	// History's contents and serializes tap registration. Tap lists live
	// per box port (boxState.taps) behind atomic pointers, published with
	// amortized-doubling growth; tapCopies counts elements copied during
	// those growths — the regression test's evidence that registration
	// is no longer quadratic.
	cpHist    map[query.Port]*stream.History
	cpMu      sync.Mutex
	tapCopies atomic.Uint64
	// cpEvictCtr counts tuples permanently evicted from connection-point
	// histories ("cp.evicted" in /metrics). resyncDepth/resyncCorr track
	// active HA resyncs (BeginResync/EndResync): an eviction while a
	// resync replays is journaled with the resync's correlation id,
	// because the replay may now have a hole the receiver cannot see.
	cpEvictCtr  *metrics.Counter
	resyncDepth atomic.Int32
	resyncCorr  atomic.Uint64

	// Parallel runtime state: the configured pool size, the active
	// dispatcher (nil when no RunParallel is in flight; Ingest kicks it so
	// idle workers notice externally arriving work), and the advance
	// dedup timestamp. Time-driven operators live in the topo snapshot.
	workers     int
	disp        atomic.Pointer[dispatcher]
	lastAdvance atomic.Int64

	// Runtime split/merge state: the pending transition request slot
	// (consumed at step/train boundaries, where ownership is safe to
	// take), the autosplit controller, transition counters, and the
	// drain latch that parks transitions while Drain stabilizes the
	// network.
	pendTrans            atomic.Pointer[transRequest]
	auto                 *autoSplit
	splitCtr, unsplitCtr atomic.Uint64
	draining             atomic.Bool

	// Latency-SLO plane (nil when disabled): resolved config and the
	// scratch sketch SampleStats copies each output's cumulative sketch
	// into before handing it to the store, so sampling allocates nothing.
	slo       *SLOConfig
	skScratch *sketch.Sketch
	lastSkWin int64 // last stats window the sketches were published in

	// qBytes is the total bytes across all box input queues, maintained at
	// push/pop so storage accounting never walks every queue.
	qBytes atomic.Int64

	// serialKernels disables batch-kernel dispatch (Config.SerialKernels).
	serialKernels bool

	onOutput OutputFn
	ingested atomic.Uint64
	seq      atomic.Uint64
	relayIn  map[string]bool
}

// route is a delivery target for an input stream or a box output port.
type route struct {
	box  *boxState // nil when out != nil
	port int
	out  *outputState
}

type boxState struct {
	id         string
	inst       op.Operator
	inQ        []*entryQueue
	downstream [][]route // per output port
	emit       op.Emit

	// kernel is the operator's batch entry point when it implements
	// op.TrainProcessor (nil otherwise), and consumes caches the
	// op.Consumer assertion — both resolved once at construction so the
	// train loop pays no per-train type assertions. refreshInst must be
	// called whenever inst is swapped.
	kernel   op.TrainProcessor
	consumes bool

	// cpH and taps are the per-output-port connection-point caches: the
	// retained history (nil for non-CP ports) and the ad hoc tap list
	// behind an atomic pointer, so the emit hot path pays a bounds check
	// and a nil load instead of two map lookups. Both are nil-slice on
	// runtime-built replica and merge boxes, which have no CP ports.
	cpH  []*stream.History
	taps []atomic.Pointer[[]op.Emit]

	virtCost int64
	cost     *metrics.EWMA // ns per tuple, processing only
	wait     *metrics.EWMA // ns queueing delay
	inCount  atomic.Int64
	outCount atomic.Int64
	workNs   atomic.Int64 // cumulative processing time (ns)

	// running marks the box as owned by a parallel worker; guarded by the
	// dispatcher mutex and never set on the serial path.
	running bool

	// replica is the 1-based ordinal of a key-partition replica box
	// (0 for ordinary boxes), parentID names the split box a replica or
	// merge box belongs to, part points at the attached partition when
	// this box is split (loaded lock-free on the delivery hot path), and
	// cached retains a built partition across split/unsplit cycles so
	// repeated oscillation neither regrows the topology nor resets the
	// replicas' monotonic stats counters. cached is guarded by topoMu.
	replica  int
	parentID string
	part     atomic.Pointer[partition]
	cached   *partition

	// cur is the span of the tuple currently being processed: emitted
	// tuples inherit it so the trace follows derivation through the box.
	// Only the box's current owner (the serial loop, or the one worker
	// that holds the box) touches it; ownership hand-off through the
	// dispatcher lock orders those accesses.
	cur *trace.Span

	// eb and collect are the batch path's emission buffer: collect is a
	// fixed closure that appends (port, tuple) to eb, and eb points at a
	// pooled emitBuf only for the duration of one untraced train. The
	// train's emissions are then routed in same-port runs by flushEmits —
	// one clock read, one downstream lock, one accounting update per run.
	// Only the box's current owner touches either field.
	eb      *emitBuf
	collect op.Emit
}

// refreshInst re-resolves the cached interface assertions after inst is
// installed or replaced (construction, partition refresh).
func (b *boxState) refreshInst() {
	b.kernel, _ = b.inst.(op.TrainProcessor)
	_, b.consumes = b.inst.(op.Consumer)
	if b.collect == nil {
		// Built once, not per train: a method-value conversion per train
		// would allocate. The untraced lane never consults b.cur, so the
		// closure skips the span-inheritance branch makeEmit carries.
		b.collect = func(port int, t stream.Tuple) { b.eb.add(port, t) }
	}
}

// topoSnap is one immutable snapshot of the engine's executable box set:
// the scheduling order (replicas and merge boxes sit directly after
// their parent, preserving topological order), the time-driven subset,
// and the id index. Split/unsplit transitions build a fresh snapshot and
// swap the pointer; readers hold a loaded snapshot for at most one pass.
type topoSnap struct {
	boxes []*boxState
	timed []*boxState // operators whose Advance does time-triggered work
	byID  map[string]*boxState
}

// snap returns the current topology snapshot.
func (e *Engine) snap() *topoSnap { return e.snapPtr.Load() }

// New builds an engine for the network with live operator instances.
func New(net *query.Network, cfg Config) (*Engine, error) {
	e := &Engine{
		net:     net,
		outputs: map[string]*outputState{},
		inputs:  map[string][]route{},
		cpHist:  map[query.Port]*stream.History{},
		reg:     metrics.NewRegistry(),
	}
	boxes := map[string]*boxState{}
	var topo, timed []*boxState
	e.clock = cfg.Clock
	if e.clock == nil {
		e.clock = WallClock{}
	}
	if vc, ok := e.clock.(*VirtualClock); ok {
		e.vclock = vc
	}
	if cfg.Workers > 0 && e.vclock != nil {
		return nil, fmt.Errorf("engine: Workers=%d with a VirtualClock: the deterministic virtual-time path is serial by design", cfg.Workers)
	}
	e.workers = cfg.Workers
	e.serialKernels = cfg.SerialKernels
	e.sched = cfg.Scheduler
	if e.sched == nil {
		e.sched = NewTrainScheduler(DefaultMaxTrain)
	}
	e.storage = NewStorage(cfg.MemoryBudget)
	e.monitor = NewMonitor(e.clock)
	e.ingCtr = e.reg.Counter("engine.ingested")
	e.shedCtr = e.reg.Counter("engine.shed")
	e.delCtr = e.reg.Counter("engine.delivered")
	e.cpEvictCtr = e.reg.Counter("cp.evicted")
	if cfg.Tracer != nil {
		e.tracer = cfg.Tracer
		e.traceQ = e.reg.Histogram("trace.queue_ns")
		e.traceP = e.reg.Histogram("trace.proc_ns")
		e.traceN = e.reg.Histogram("trace.net_ns")
	}
	e.journal = cfg.Journal
	e.busyCtr = e.reg.Counter("engine.busy_ns")
	if cfg.Stats != nil {
		e.stats = cfg.Stats
		e.statsEvery = uint64(cfg.StatsEvery)
		if e.statsEvery == 0 {
			e.statsEvery = 64
		}
	}

	e.defCost = cfg.DefaultBoxCost
	if e.defCost <= 0 {
		e.defCost = 1000
	}

	// Instantiate boxes.
	for _, id := range net.Boxes() {
		inst, err := op.Build(net.Box(id).Spec)
		if err != nil {
			return nil, fmt.Errorf("engine: box %q: %w", id, err)
		}
		if _, err := inst.Bind(net.InputSchemas(id)); err != nil {
			return nil, fmt.Errorf("engine: box %q: %w", id, err)
		}
		b := &boxState{
			id:       id,
			inst:     inst,
			inQ:      make([]*entryQueue, inst.NumIn()),
			virtCost: e.defCost,
			cost:     metrics.NewEWMA(0.2),
			wait:     metrics.NewEWMA(0.2),
		}
		if c, ok := cfg.BoxCosts[id]; ok && c > 0 {
			b.virtCost = c
		}
		b.refreshInst()
		for i := range b.inQ {
			b.inQ[i] = newEntryQueue()
		}
		b.downstream = make([][]route, inst.NumOut())
		b.cpH = make([]*stream.History, inst.NumOut())
		b.taps = make([]atomic.Pointer[[]op.Emit], inst.NumOut())
		boxes[id] = b
		topo = append(topo, b)
		if _, ok := inst.(op.TimeDriven); ok {
			// Only time-driven operators (WSort timeouts) do work in
			// Advance; sweeping every box after every train was O(boxes)
			// of no-op virtual calls.
			timed = append(timed, b)
		}
	}

	// Outputs.
	for name, o := range net.Outputs() {
		os, err := newOutputState(o, net.OutputSchema(o.Src), e.reg)
		if err != nil {
			return nil, fmt.Errorf("engine: output %q: %w", name, err)
		}
		e.outputs[name] = os
	}

	// Wire arcs and bindings into routes.
	for _, a := range net.Arcs() {
		from := boxes[a.From.Box]
		from.downstream[a.From.Port] = append(from.downstream[a.From.Port],
			route{box: boxes[a.To.Box], port: a.To.Port})
	}
	for name, o := range net.Outputs() {
		from := boxes[o.Src.Box]
		from.downstream[o.Src.Port] = append(from.downstream[o.Src.Port],
			route{out: e.outputs[name]})
	}
	for name, in := range net.Inputs() {
		for _, d := range in.Dests {
			e.inputs[name] = append(e.inputs[name], route{box: boxes[d.Box], port: d.Port})
		}
	}

	// Connection-point history buffers (§2.2): one per marked arc source
	// port, bounded by a slice of the memory budget, cached on the source
	// box so the emit path indexes instead of hashing a Port key.
	for _, a := range net.Arcs() {
		if a.ConnectionPoint && e.cpHist[a.From] == nil {
			h := stream.NewHistory(e.storage.Budget() / 8)
			if cfg.CPSpill != nil {
				if sp := cfg.CPSpill(a.From); sp != nil {
					h.SetSpill(sp)
				}
			}
			e.cpHist[a.From] = h
			boxes[a.From.Box].cpH[a.From.Port] = h
		}
	}

	// Per-box emit closures (the Router of Fig 3). This is the serial
	// path; parallel workers buffer emits per worker and merge them
	// through routeEmit afterwards.
	for _, b := range boxes {
		b.emit = e.makeEmit(b)
	}
	e.snapPtr.Store(&topoSnap{boxes: topo, timed: timed, byID: boxes})

	// Shedder, with per-box drop attribution: one counter per destination
	// box of each input, so the stats plane can see which boxes shedding
	// starves (drops happen at ingest, before any box runs).
	if cfg.Shed != nil {
		sh, err := NewShedder(*cfg.Shed, net)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		e.shedder = sh
		e.shedByInput = map[string][]*metrics.Counter{}
		for name, in := range net.Inputs() {
			for _, d := range in.Dests {
				e.shedByInput[name] = append(e.shedByInput[name],
					e.reg.Counter("shed.drop."+d.Box))
			}
		}
	}
	if cfg.AutoSplit != nil {
		if e.stats == nil {
			win := cfg.AutoSplit.WindowNs
			if win <= 0 {
				win = 25e6 // 25 ms: fine-grained enough for runtime control
			}
			e.stats = stats.NewStore(win, 16)
			e.statsEvery = uint64(cfg.StatsEvery)
			if e.statsEvery == 0 {
				e.statsEvery = 64
			}
		}
		e.auto = newAutoSplit(e, *cfg.AutoSplit)
	}
	if cfg.SLO != nil {
		s := *cfg.SLO
		s.applyDefaults()
		e.slo = &s
		if e.stats == nil {
			win := s.WindowNs
			if win <= 0 {
				win = 25e6
			}
			e.stats = stats.NewStore(win, 16)
			e.statsEvery = uint64(cfg.StatsEvery)
			if e.statsEvery == 0 {
				e.statsEvery = 64
			}
		}
		// The plane's switch: every output grows a cumulative latency
		// sketch (recorded per delivery, published per stats window) so
		// digests can gossip whole distributions. Without SLO, delivery
		// pays only the nil check.
		for _, os := range e.outputs {
			os.enableLatencySketch()
		}
		e.skScratch = sketch.New(sketch.DefaultAlpha)
		e.lastSkWin = -1
	}
	return e, nil
}

// makeEmit builds a box's serial emit closure (the Router of Fig 3);
// partition replicas and merge boxes get the same closure shape when a
// split attaches them at runtime.
func (e *Engine) makeEmit(b *boxState) op.Emit {
	return func(port int, t stream.Tuple) {
		b.outCount.Add(1)
		if t.Span == nil {
			// Derived tuples (window aggregates, joins) inherit the
			// span of the tuple being processed.
			t.Span = b.cur
		}
		e.routeEmit(b, port, 0, t, e.clock.Now())
	}
}

// routeEmit is the router half of a box emission shared by the serial
// emit closure and the parallel merge: connection-point history, ad hoc
// taps, the span's processing mark (attributed to worker when non-zero),
// then delivery to the downstream routes.
func (e *Engine) routeEmit(b *boxState, port, worker int, t stream.Tuple, now int64) {
	if port < len(b.cpH) {
		if h := b.cpH[port]; h != nil {
			// The history retains the tuple beyond its delivery lifetime,
			// so a pool-owned Vals must be surrendered to the GC.
			t.Disown()
			added := t.MemSize()
			e.cpMu.Lock()
			delta, dropped := h.Add(t)
			e.cpMu.Unlock()
			e.noteCPAdd(b, port, added, delta, dropped)
		}
		if tl := b.taps[port].Load(); tl != nil {
			// Taps are arbitrary consumers (often another engine's
			// Ingest); they may retain, so ownership cannot cross here.
			t.Disown()
			for _, tap := range *tl {
				tap(0, t)
			}
		}
	}
	t.Span.MarkReplica(trace.KindProc, b.id, worker, b.replica, now)
	e.deliver(b.downstream[port], t, now)
}

// noteCPAdd charges a connection-point retention to storage accounting —
// the fix for history bytes being invisible to spill pressure: added is
// the retained tuples' footprint, delta the net in-memory change after
// eviction, dropped the tuples permanently gone (evicted with no spill,
// or pushed off the spill's disk budget). Permanent drops during an
// active HA resync are journaled with the resync's correlation id: the
// replay the receiver is counting on may now have a hole.
func (e *Engine) noteCPAdd(b *boxState, port, added, delta, dropped int) {
	e.storage.NoteEnqueue(added, int(e.qBytes.Add(int64(delta))))
	if dropped == 0 {
		return
	}
	e.cpEvictCtr.Add(int64(dropped))
	if e.resyncDepth.Load() > 0 {
		e.journal.Append(events.Event{
			Time:    e.clock.Now(),
			Kind:    events.KindCPEvict,
			Subject: b.id,
			Detail:  fmt.Sprintf("port %d during resync", port),
			Corr:    e.resyncCorr.Load(),
			V1:      float64(dropped),
			V2:      float64(e.cpEvictCtr.Value()),
		})
	}
}

// BeginResync marks an HA resync as in flight, carrying the correlation
// id its journal chain uses; connection-point evictions while any resync
// is active are journaled against it (satellite of the durable-state
// work: silent replay truncation becomes an attributable event). Calls
// nest; each BeginResync pairs with one EndResync.
func (e *Engine) BeginResync(corr uint64) {
	e.resyncCorr.Store(corr)
	e.resyncDepth.Add(1)
}

// EndResync marks the resync complete.
func (e *Engine) EndResync() { e.resyncDepth.Add(-1) }

// CPEvicted returns the total tuples permanently evicted from
// connection-point histories (also "cp.evicted" in the metrics registry).
func (e *Engine) CPEvicted() int64 { return e.cpEvictCtr.Value() }

// deliver routes a tuple to a set of targets: box queues or outputs. The
// caller supplies now so that a traced tuple's final Proc mark and the
// monitor's latency observation share one timestamp — the decomposition
// then sums to the monitored latency exactly, not merely approximately.
func (e *Engine) deliver(targets []route, t stream.Tuple, now int64) {
	if len(targets) > 1 {
		// Fan-out: every copy shares the Vals backing array, so no single
		// death point can prove the buffer dead — surrender it to the GC.
		t.Disown()
	}
	first := true
	for _, r := range targets {
		tt := t
		if !first {
			// A span follows exactly one path: fan-out copies would all
			// mark the same shared span and corrupt its accounting.
			tt.Span = nil
		}
		first = false
		if r.out != nil {
			r.out.observe(tt, now)
			e.delCtr.Inc()
			if sp := tt.Span; sp != nil && !sp.Done() && !r.out.relay {
				if e.tracer != nil {
					e.tracer.Complete(sp, r.out.name, now)
				} else {
					// Traced upstream, delivered on an untraced node:
					// still close the span so the decomposition is whole.
					sp.Finish(r.out.name, now)
				}
				if e.traceQ != nil {
					q, p, nn := sp.Components()
					e.traceQ.Observe(float64(q))
					e.traceP.Observe(float64(p))
					e.traceN.Observe(float64(nn))
				}
				if r.out.lat != nil {
					// Tail attribution evidence: the finished span's
					// queue/proc/net stages, kept only when the latency
					// clears the output's tail cut.
					r.out.noteTail(sp)
				}
			}
			if e.onOutput != nil {
				// The callback (often the distributed layer's forwarder)
				// may retain the tuple; ownership ends here.
				tt.Disown()
				e.onOutput(r.out.name, tt)
			} else {
				// Terminal delivery with no retaining consumer: the tuple
				// is dead, and a pool-owned Vals goes back to the freelist.
				tt.Recycle()
			}
			continue
		}
		size := tt.MemSize()
		if p := r.box.part.Load(); p != nil && p.admit(tt, now, size) {
			// The box is split: the tuple went to the key-owning replica
			// instead of the parent queue (the hash-partitioning route
			// step of §5.1).
			e.storage.NoteEnqueue(size, int(e.qBytes.Add(int64(size))))
			continue
		}
		r.box.inQ[r.port].PushSized(tt, now, size)
		e.storage.NoteEnqueue(size, int(e.qBytes.Add(int64(size))))
	}
}

// flushEmits routes one untraced train's buffered emissions. Consecutive
// same-port emissions — the common case: most operators have one output
// port — travel as a single run through routeEmitTrain, so the per-tuple
// costs of the emit path (output-count increment, clock read, downstream
// queue lock, byte accounting, monitor lock) are paid once per run.
// Ordering is preserved: runs flush in emission order, and only one train
// executes per box at a time, so per-(box,port) FIFO holds exactly as it
// did with immediate per-emission routing.
func (e *Engine) flushEmits(b *boxState, worker int, eb *emitBuf, now int64) {
	n := len(eb.ts)
	if n == 0 {
		return
	}
	b.outCount.Add(int64(n))
	for i := 0; i < n; {
		port := eb.ports[i]
		j := i + 1
		for j < n && eb.ports[j] == port {
			j++
		}
		e.routeEmitTrain(b, port, worker, eb.ts[i:j], now)
		i = j
	}
}

// routeEmitTrain is routeEmit over a same-port emission run. The span
// mark is unconditional per tuple — MarkReplica is nil-receiver-safe, and
// untraced trains can still re-emit span-carrying tuples (WSort flushes
// buffered tuples admitted in earlier, traced trains).
func (e *Engine) routeEmitTrain(b *boxState, port, worker int, ts []stream.Tuple, now int64) {
	if port < len(b.cpH) {
		if h := b.cpH[port]; h != nil {
			var added, delta, dropped int
			e.cpMu.Lock()
			for i := range ts {
				ts[i].Disown()
				added += ts[i].MemSize()
				d, dr := h.Add(ts[i])
				delta += d
				dropped += dr
			}
			e.cpMu.Unlock()
			e.noteCPAdd(b, port, added, delta, dropped)
		}
		if tl := b.taps[port].Load(); tl != nil {
			for i := range ts {
				ts[i].Disown()
				for _, tap := range *tl {
					tap(0, ts[i])
				}
			}
		}
	}
	for i := range ts {
		ts[i].Span.MarkReplica(trace.KindProc, b.id, worker, b.replica, now)
	}
	e.deliverTrain(b.downstream[port], ts, now)
}

// deliverTrain delivers a same-port emission run. Fan-out and active
// splits keep the per-tuple deliver (copy semantics and key hashing are
// inherently per tuple); the two hot shapes — a single downstream box,
// or a terminal output — take batch lanes: one PushTrain/NoteEnqueue per
// run, or one monitor lock per run.
func (e *Engine) deliverTrain(targets []route, ts []stream.Tuple, now int64) {
	if len(targets) != 1 {
		for i := range ts {
			e.deliver(targets, ts[i], now)
		}
		return
	}
	r := targets[0]
	if r.out == nil {
		if r.box.part.Load() != nil {
			// Split active: each tuple hashes to its key-owning replica.
			for i := range ts {
				e.deliver(targets, ts[i], now)
			}
			return
		}
		total := r.box.inQ[r.port].PushTrain(ts, now)
		e.storage.NoteEnqueue(total, int(e.qBytes.Add(int64(total))))
		return
	}
	r.out.observeTrain(ts, now)
	e.delCtr.Add(int64(len(ts)))
	for i := range ts {
		tt := ts[i]
		if sp := tt.Span; sp != nil && !sp.Done() && !r.out.relay {
			if e.tracer != nil {
				e.tracer.Complete(sp, r.out.name, now)
			} else {
				sp.Finish(r.out.name, now)
			}
			if e.traceQ != nil {
				q, p, nn := sp.Components()
				e.traceQ.Observe(float64(q))
				e.traceP.Observe(float64(p))
				e.traceN.Observe(float64(nn))
			}
			if r.out.lat != nil {
				r.out.noteTail(sp)
			}
		}
		if e.onOutput != nil {
			tt.Disown()
			e.onOutput(r.out.name, tt)
		} else {
			tt.Recycle()
		}
	}
}

// OnOutput installs a callback invoked for every tuple delivered to any
// application output; the distributed layer uses it to forward tuples to
// downstream nodes.
func (e *Engine) OnOutput(fn OutputFn) { e.onOutput = fn }

// SetRelayOutput marks a named output as an intermediate hop: the
// distributed layer forwards its tuples to another node rather than to an
// application, so traced spans stay open there and keep accumulating
// components downstream instead of being finalized mid-path.
func (e *Engine) SetRelayOutput(name string) {
	if os, ok := e.outputs[name]; ok {
		os.relay = true
	}
}

// SetRelayInput marks a named input as a mid-path arrival point: tuples
// entering there came from another node, so the sampling decision was
// already made upstream and untraced tuples stay untraced (re-sampling
// mid-path would inflate the traced fraction and misattribute the
// already-elapsed upstream time).
func (e *Engine) SetRelayInput(name string) {
	if e.relayIn == nil {
		e.relayIn = map[string]bool{}
	}
	e.relayIn[name] = true
}

// Ingest pushes one tuple onto a named input stream. Tuples with zero TS
// are stamped with the current clock (their birth time for latency QoS);
// tuples with zero Seq are assigned the node-local sequence (§6.2).
// It reports whether the tuple was accepted (false when shed). Ingest is
// safe to call concurrently with a running Step loop or RunParallel pool.
func (e *Engine) Ingest(input string, t stream.Tuple) bool {
	routes, ok := e.inputs[input]
	if !ok {
		return false
	}
	// Ownership never crosses an engine boundary: whatever the caller
	// hands in, the caller may still hold — the pool takes over only for
	// buffers the engine's own operators draw from it.
	t.Disown()
	now := e.clock.Now()
	if t.TS == 0 {
		t.TS = now
	}
	if t.Seq == 0 {
		t.Seq = e.seq.Add(1)
	}
	e.ingested.Add(1)
	e.ingCtr.Inc()
	if e.shedder != nil && e.shedder.ShouldDrop(e, input, t) {
		e.noteDrop()
		e.shedCtr.Inc()
		for _, c := range e.shedByInput[input] {
			c.Inc()
		}
		return false
	}
	if t.Span == nil && !e.relayIn[input] {
		// Admitted and locally born: decide here whether to trace it. A
		// tuple arriving with a span keeps it — its trace began upstream.
		t.Span = e.tracer.Sample(t.TS)
	}
	e.deliver(routes, t, now)
	// A worker pool waiting out an idle stretch must notice new work.
	if d := e.disp.Load(); d != nil {
		d.kick()
	}
	return true
}

func (e *Engine) noteDrop() {
	for _, os := range e.outputs {
		os.noteDrop()
	}
}

// Step runs one scheduling decision: the scheduler picks a box and a
// train, and the engine pushes that many waiting tuples through it
// (train scheduling, §2.3). It reports whether any work was done.
//
// Two train bodies exist. The virtual-clock body keeps the exact
// per-tuple loop — pop, queue-mark, clock advance, Process — because the
// deterministic experiments' byte-identical traces depend on each tuple's
// marks landing at its own modeled completion time; SerialKernels forces
// the same body under a wall clock as the hot-path guard's baseline. The
// wall-clock body pops the whole train with one lock acquisition and
// dispatches it through the operator's batch kernel in one interface
// call, falling back per tuple for trains carrying traced tuples (span
// inheritance routes through boxState.cur, which is per-tuple state).
func (e *Engine) Step() bool {
	b, port, n := e.sched.Next(e)
	if b == nil {
		return false
	}
	var processed int
	if e.vclock != nil || e.serialKernels {
		processed = e.stepSerialTrain(b, port, n)
	} else {
		processed = e.stepBatchTrain(b, port, n)
	}
	if processed == 0 {
		return false
	}
	now := e.clock.Now()
	e.advanceTimeSensitive(now)
	if e.shedder != nil {
		e.shedder.Control(e)
	}
	if steps := e.steps.Add(1); e.stats != nil && steps%e.statsEvery == 0 {
		e.SampleStats(now)
		e.autosplitCheck(now)
	}
	// Step is the serial path, so the step boundary owns every box:
	// apply any requested split/unsplit transition directly.
	e.applyPendingSerial()
	return true
}

// stepSerialTrain is the legacy per-tuple train body, kept verbatim for
// the virtual-clock path (trace fidelity) and the SerialKernels baseline.
func (e *Engine) stepSerialTrain(b *boxState, port, n int) int {
	start := e.clock.Now()
	processed := 0
	for i := 0; i < n; i++ {
		en, ok := b.inQ[port].Pop()
		if !ok {
			break
		}
		e.qBytes.Add(int64(-en.size))
		b.wait.Observe(float64(start - en.enq))
		b.inCount.Add(1)
		if sp := en.t.Span; sp != nil {
			// Queue ends at this tuple's own service start — under a
			// virtual clock that is start + i*virtCost, not the train
			// start, so a long train does not smear earlier tuples'
			// service time into later tuples' queue component.
			sp.MarkReplica(trace.KindQueue, b.id, 0, b.replica, e.clock.Now())
			b.cur = sp
		}
		if e.vclock != nil {
			// Advance per tuple, before Process: the emit's Proc mark and
			// the monitor's delivery observation then land at this tuple's
			// completion time. Bulk-advancing after the loop would stamp
			// every tuple in the train at the train's start, so the whole
			// train's processing time would be charged downstream (to the
			// outbox wait, i.e. the network component) instead of to the
			// box — exactly the misattribution tail analysis cares about.
			e.vclock.Advance(b.virtCost)
		}
		b.inst.Process(port, en.t, b.emit)
		b.cur = nil
		processed++
	}
	if processed == 0 {
		return 0
	}
	if e.vclock != nil {
		work := int64(processed) * b.virtCost
		b.cost.Observe(float64(b.virtCost))
		b.workNs.Add(work)
		e.busyCtr.Add(work)
	} else {
		elapsed := e.clock.Now() - start
		b.cost.Observe(float64(elapsed) / float64(processed))
		b.workNs.Add(elapsed)
		e.busyCtr.Add(elapsed)
	}
	return processed
}

// stepBatchTrain is the wall-clock train body: one queue lock, one
// kernel dispatch, and pooled-input reclamation for consuming operators.
func (e *Engine) stepBatchTrain(b *boxState, port, n int) int {
	start := e.clock.Now()
	tb := getTrainBuf()
	bytes := b.inQ[port].PopTrain(tb, n)
	ts := tb.ts
	processed := len(ts)
	if processed == 0 {
		putTrainBuf(tb)
		return 0
	}
	e.qBytes.Add(int64(-bytes))
	b.inCount.Add(int64(processed))
	traced := false
	waitSum := 0.0
	for i := range ts {
		waitSum += float64(start - tb.enq[i])
		if ts[i].Span != nil {
			traced = true
		}
	}
	// One EWMA update with the train's mean wait: the same signal the
	// scheduler reads, without a per-tuple Observe in the hot loop.
	b.wait.Observe(waitSum / float64(processed))
	switch {
	case traced:
		// Traced tuples thread their span through b.cur so derived
		// emissions inherit it — inherently per-tuple; trains carrying
		// them take the slow lane (tracing samples a small fraction).
		for i := range ts {
			if sp := ts[i].Span; sp != nil {
				sp.MarkReplica(trace.KindQueue, b.id, 0, b.replica, e.clock.Now())
				b.cur = sp
			}
			b.inst.Process(port, ts[i], b.emit)
			b.cur = nil
		}
	case b.kernel != nil:
		eb := getEmitBuf()
		b.eb = eb
		b.kernel.ProcessTrain(port, ts, b.collect)
		b.eb = nil
		e.flushEmits(b, 0, eb, e.clock.Now())
		putEmitBuf(eb)
	default:
		eb := getEmitBuf()
		b.eb = eb
		for i := range ts {
			b.inst.Process(port, ts[i], b.collect)
		}
		b.eb = nil
		e.flushEmits(b, 0, eb, e.clock.Now())
		putEmitBuf(eb)
	}
	if b.consumes {
		// The operator neither retained nor re-emitted its inputs: any
		// pool-owned Vals among them died in this train.
		for i := range ts {
			ts[i].Recycle()
		}
	}
	putTrainBuf(tb)
	elapsed := e.clock.Now() - start
	b.cost.Observe(float64(elapsed) / float64(processed))
	b.workNs.Add(elapsed)
	e.busyCtr.Add(elapsed)
	return processed
}

// advanceTimeSensitive meets the timeout obligations of time-driven
// operators (op.TimeDriven, e.g. WSort): called after box executions, it
// advances only those operators, and only when the clock actually moved
// since the last advance — the serial engine used to sweep Advance over
// every box after every train, O(boxes) of no-op virtual calls per step.
func (e *Engine) advanceTimeSensitive(now int64) {
	timed := e.snap().timed
	if len(timed) == 0 || e.lastAdvance.Swap(now) == now {
		return
	}
	for _, b := range timed {
		b.inst.Advance(now, b.emit)
	}
}

// SampleStats folds the current monitored statistics of every box into
// the configured stats store (no-op when none is configured): cost,
// selectivity, and queue depth as gauges; cumulative work and shed drops
// as counters the store differences into windowed rates. Node-level
// series (node.util, node.queued, link.*) are the distributed layer's
// job — only it knows the host's wall-clock share and its links.
func (e *Engine) SampleStats(now int64) {
	if e.stats == nil {
		return
	}
	for _, b := range e.snap().boxes {
		queued := 0
		for _, q := range b.inQ {
			queued += q.Len()
		}
		in, out := b.inCount.Load(), b.outCount.Load()
		sel := 0.0
		if in > 0 {
			sel = float64(out) / float64(in)
		}
		e.stats.Observe(stats.SeriesBoxCost(b.id), stats.KindGauge, now, b.cost.Value())
		e.stats.Observe(stats.SeriesBoxSelectivity(b.id), stats.KindGauge, now, sel)
		e.stats.Observe(stats.SeriesBoxQueue(b.id), stats.KindGauge, now, float64(queued))
		e.stats.Observe(stats.SeriesBoxWork(b.id), stats.KindCounter, now, float64(b.workNs.Load()))
	}
	for name, ctrs := range e.shedByInput {
		for i, c := range ctrs {
			box := e.net.Inputs()[name].Dests[i].Box
			e.stats.Observe(stats.SeriesBoxDrops(box), stats.KindCounter, now, float64(c.Value()))
		}
	}
	e.stats.Observe(stats.SeriesNodeShed, stats.KindCounter, now, float64(e.shedCtr.Value()))
	// Delivered-QoS attribution: each output's cumulative utility and
	// delivery counters, which the plane differences into a windowed mean
	// utility for the gossiped digests (§7.1 — the LoadMap then carries
	// what quality each node delivers, not just where its load sits).
	for name, os := range e.outputs {
		if !os.hasQoS() {
			continue
		}
		utilSum, delivered := os.qosCounters()
		e.stats.Observe(stats.SeriesOutputUtilSum(name), stats.KindCounter, now, utilSum)
		e.stats.Observe(stats.SeriesOutputDelivered(name), stats.KindCounter, now, float64(delivered))
	}
	// Latency sketches: snapshot each output's cumulative sketch into the
	// store, which windows the deltas. Publishing once per window loses
	// nothing (the sketch is cumulative; deltas accumulate between
	// publishes) and keeps per-sample overhead at a window-index compare.
	if e.skScratch != nil {
		if win := now / e.stats.WindowNs(); win != e.lastSkWin {
			e.lastSkWin = win
			for name, os := range e.outputs {
				if os.lat == nil {
					continue
				}
				os.mu.Lock()
				e.skScratch.CopyFrom(os.lat)
				os.mu.Unlock()
				e.stats.ObserveSketch(stats.SeriesOutputLatency(name), now, e.skScratch)
			}
			e.sloCheck(now)
		}
	}
}

// StatsStore returns the configured windowed stats store (nil when the
// stats plane is off).
func (e *Engine) StatsStore() *stats.Store { return e.stats }

// BusyNs returns the cumulative processing time the engine has spent in
// box executions — the raw counter utilization is differenced from.
func (e *Engine) BusyNs() int64 { return e.busyCtr.Value() }

// RunUntilIdle steps until no box has queued work, or until maxSteps (<= 0
// means unbounded). It returns the number of steps executed.
func (e *Engine) RunUntilIdle(maxSteps int) int {
	steps := 0
	for maxSteps <= 0 || steps < maxSteps {
		if !e.Step() {
			break
		}
		steps++
	}
	return steps
}

// AdvanceTime moves a virtual clock forward across an idle gap and gives
// time-driven operators (WSort timeouts) a chance to emit. It is a no-op
// under a wall clock.
func (e *Engine) AdvanceTime(d int64) {
	if e.vclock == nil {
		return
	}
	e.vclock.Advance(d)
	e.advanceTimeSensitive(e.vclock.Now())
}

// Drain flushes every box in topological order, processing intermediate
// results between flushes — the stabilization step of §5.1: inputs are
// choked off (the caller simply stops Ingesting), queued tuples drain,
// and windowed state is forced out so the network is empty and can be
// manipulated. Split/unsplit transitions are parked while draining (a
// pending request is dropped: re-partitioning an empty network is pure
// churn), and the flush passes repeat until no box emits anything new,
// so runtime-attached merge networks whose flushes feed further boxes
// still empty completely.
func (e *Engine) Drain() {
	e.draining.Store(true)
	defer e.draining.Store(false)
	e.pendTrans.Store(nil)
	e.RunUntilIdle(0)
	for {
		before := e.emittedTotal()
		for _, b := range e.snap().boxes {
			b.inst.Flush(b.emit)
			e.RunUntilIdle(0)
		}
		if e.emittedTotal() == before && e.QueuedTuples() == 0 {
			return
		}
	}
}

// emittedTotal sums every box's emission count — Drain's fixpoint
// measure.
func (e *Engine) emittedTotal() int64 {
	var total int64
	for _, b := range e.snap().boxes {
		total += b.outCount.Load()
	}
	return total
}

// QueuedTuples returns the total number of tuples waiting in box queues.
func (e *Engine) QueuedTuples() int {
	total := 0
	for _, b := range e.snap().boxes {
		for _, q := range b.inQ {
			total += q.Len()
		}
	}
	return total
}

// QueuedBytes returns the total bytes of queue state: box input queues
// plus connection-point history windows, maintained atomically at
// push/pop and history add/evict (the storage manager's accounting
// input). History is the §2.3 state that dominates memory, so it is
// charged here — an engine whose network retains history reports
// nonzero QueuedBytes even when no tuple is waiting to run.
func (e *Engine) QueuedBytes() int { return int(e.qBytes.Load()) }

// BoxStats reports the monitored operational statistics of §7.1 for one
// box: average processing cost, average queueing delay, selectivity, and
// current queue length.
type BoxStats struct {
	ID          string
	Cost        float64 // ns per tuple
	Wait        float64 // ns queueing delay
	Selectivity float64 // out tuples per in tuple
	Queued      int
	Processed   int64 // tuples consumed since the engine started
}

// Stats returns the current statistics for the named box.
func (e *Engine) Stats(boxID string) (BoxStats, bool) {
	b, ok := e.snap().byID[boxID]
	if !ok {
		return BoxStats{}, false
	}
	in, out := b.inCount.Load(), b.outCount.Load()
	sel := 0.0
	if in > 0 {
		sel = float64(out) / float64(in)
	}
	queued := 0
	for _, q := range b.inQ {
		queued += q.Len()
	}
	return BoxStats{
		ID:          boxID,
		Cost:        b.cost.Value(),
		Wait:        b.wait.Value(),
		Selectivity: sel,
		Queued:      queued,
		Processed:   in,
	}, true
}

// AllStats returns stats for every box in topological order.
func (e *Engine) AllStats() []BoxStats {
	boxes := e.snap().boxes
	out := make([]BoxStats, 0, len(boxes))
	for _, b := range boxes {
		s, _ := e.Stats(b.id)
		out = append(out, s)
	}
	return out
}

// ConnectionPoints lists the ports with retained history — the
// predetermined arcs of §2.2 where ad hoc queries may attach.
func (e *Engine) ConnectionPoints() []query.Port {
	out := make([]query.Port, 0, len(e.cpHist))
	for p := range e.cpHist {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Box != out[j].Box {
			return out[i].Box < out[j].Box
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// AttachAdHoc attaches an ad hoc consumer to a connection point (§2.2):
// the retained history is replayed into fn first, then fn receives every
// live tuple crossing the arc. The returned count is the replayed history
// length. Ad hoc queries are typically another Engine's Ingest wrapped in
// fn.
func (e *Engine) AttachAdHoc(p query.Port, fn func(stream.Tuple)) (int, error) {
	h, ok := e.cpHist[p]
	if !ok {
		return 0, fmt.Errorf("engine: %v is not a connection point", p)
	}
	e.cpMu.Lock()
	replay := h.Replay()
	e.cpMu.Unlock()
	for _, t := range replay {
		fn(t)
	}
	b := e.snap().byID[p.Box]
	tap := op.Emit(func(_ int, t stream.Tuple) { fn(t) })
	// Publish the new tap with amortized-doubling growth under cpMu (the
	// registration lock): when the published backing array has spare
	// capacity, the new tap is written one slot past the published length
	// and a longer slice header is swapped in — readers holding the old
	// header never index that slot, so no copy is needed. Only a full
	// backing array copies the existing taps (into double the capacity),
	// which keeps total copy work linear in registrations. The previous
	// scheme rebuilt the whole list on every attach, going quadratic
	// under dspstat-watch attach/detach churn; tapCopies counts copied
	// elements so the regression test can pin the linear bound.
	e.cpMu.Lock()
	slot := &b.taps[p.Port]
	var nl []op.Emit
	if old := slot.Load(); old != nil && len(*old) < cap(*old) {
		nl = append(*old, tap)
	} else if old != nil {
		nl = make([]op.Emit, len(*old), 2*(len(*old)+1))
		copy(nl, *old)
		e.tapCopies.Add(uint64(len(*old)))
		nl = append(nl, tap)
	} else {
		nl = make([]op.Emit, 0, 4)
		nl = append(nl, tap)
	}
	slot.Store(&nl)
	e.cpMu.Unlock()
	return len(replay), nil
}

// TapCopies returns the cumulative number of tap elements copied during
// AttachAdHoc registrations — the regression meter for the linear-growth
// bound (the old rebuild-on-every-attach scheme was quadratic).
func (e *Engine) TapCopies() uint64 { return e.tapCopies.Load() }

// EarliestDependency returns the lowest sequence number that the engine's
// in-flight state still depends on: the minimum over queued tuples and
// the state of every stateful operator (op.Stateful). The HA protocol
// (§6.2) reports this on the back channel so upstream servers can
// truncate their output queues. ok is false when the engine holds no
// state at all.
func (e *Engine) EarliestDependency() (uint64, bool) {
	var min uint64
	found := false
	note := func(seq uint64) {
		if !found || seq < min {
			min, found = seq, true
		}
	}
	for _, b := range e.snap().boxes {
		for _, q := range b.inQ {
			q.ForEach(func(en entry) { note(en.t.Seq) })
		}
		if s, ok := b.inst.(op.Stateful); ok {
			if seq, ok := s.EarliestSeq(); ok {
				note(seq)
			}
		}
	}
	return min, found
}

// Monitor exposes the QoS monitor.
func (e *Engine) Monitor() *Monitor { return e.monitor }

// Output returns per-output QoS observations.
func (e *Engine) Output(name string) (OutputReport, bool) {
	os, ok := e.outputs[name]
	if !ok {
		return OutputReport{}, false
	}
	return os.report(), true
}

// OutputNames lists the engine's application outputs.
func (e *Engine) OutputNames() []string {
	names := make([]string, 0, len(e.outputs))
	for n := range e.outputs {
		names = append(names, n)
	}
	return names
}

// Storage exposes the storage manager's accounting.
func (e *Engine) Storage() *Storage { return e.storage }

// Shedder returns the load shedder, or nil when shedding is disabled.
func (e *Engine) Shedder() *Shedder { return e.shedder }

// Network returns the network this engine executes.
func (e *Engine) Network() *query.Network { return e.net }

// Clock returns the engine's clock.
func (e *Engine) Clock() Clock { return e.clock }

// Ingested returns the number of tuples offered to the engine.
func (e *Engine) Ingested() uint64 { return e.ingested.Load() }

// Steps returns the number of scheduling decisions executed (serial steps
// plus parallel trains).
func (e *Engine) Steps() uint64 { return e.steps.Load() }

// Metrics returns the engine's metric registry (counters, trace component
// histograms, per-output latency histograms).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Tracer returns the engine's tracer, nil when tracing is disabled.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Journal returns the engine's event journal, nil when journaling is
// disabled.
func (e *Engine) Journal() *events.Journal { return e.journal }

// Draining reports whether a Drain is in progress — the run-state
// /healthz exposes: a draining engine is shutting its network down and
// should not be offered new work.
func (e *Engine) Draining() bool { return e.draining.Load() }
