package engine

import (
	"testing"

	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stream"
)

// shedNet is a single pass-through filter whose output carries a value
// QoS over field B: high B is precious, low B is expendable.
func shedNet(t *testing.T) *query.Network {
	t.Helper()
	spec := &qos.Spec{
		Latency:    qos.DefaultLatency(1e6, 1e8),
		Loss:       qos.DefaultLoss(0.05),
		Value:      qos.MustGraph(qos.Point{X: 0, U: 0}, qos.Point{X: 100, U: 1}),
		ValueField: "B",
	}
	n, err := query.NewBuilder("shed").
		AddBox("f", filterSpec("true")).
		BindInput("in", tSchema, "f", 0).
		BindOutput("out", "f", 0, spec).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func valueGraph() *qos.Graph {
	return qos.MustGraph(qos.Point{X: 0, U: 0}, qos.Point{X: 100, U: 1})
}

func overload(e *Engine, n int) {
	// Offer n tuples (B uniform in [0,100)) at twice the engine's
	// processing capacity: per-tuple box cost is set by the test config,
	// and the arrival gap is half of it, so queues grow until the control
	// loop sheds.
	gap := e.snap().boxes[0].virtCost / 2
	if gap < 1 {
		gap = 1
	}
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = tuple(int64(i), int64(i%100))
	}
	Drive(e, "in", tuples, gap)
	e.RunUntilIdle(0)
}

func TestShedderActivatesUnderOverload(t *testing.T) {
	e, _ := newVirtualEngine(t, shedNet(t), Config{
		DefaultBoxCost: 100,
		Shed:           &ShedConfig{Mode: ShedRandom, QueueHigh: 100, QueueLow: 10},
	})
	overload(e, 5000)
	sh := e.Shedder()
	if sh.Dropped() == 0 {
		t.Fatal("overload should trigger drops")
	}
	rep, _ := e.Output("out")
	if rep.Dropped == 0 || rep.DeliveredFraction >= 1 {
		t.Errorf("report should reflect drops: %+v", rep)
	}
}

func TestShedderIdleWhenUnderloaded(t *testing.T) {
	e, _ := newVirtualEngine(t, shedNet(t), Config{
		Shed: &ShedConfig{Mode: ShedRandom, QueueHigh: 10_000, QueueLow: 100},
	})
	for i := 0; i < 500; i++ {
		e.Ingest("in", tuple(int64(i), 1))
		e.RunUntilIdle(0) // keep queues empty
	}
	if e.Shedder().Dropped() != 0 {
		t.Errorf("underloaded engine dropped %d tuples", e.Shedder().Dropped())
	}
	if e.Shedder().DropRate() != 0 {
		t.Errorf("drop rate = %g, want 0", e.Shedder().DropRate())
	}
}

func TestShedderRecovers(t *testing.T) {
	e, _ := newVirtualEngine(t, shedNet(t), Config{
		Shed: &ShedConfig{Mode: ShedRandom, QueueHigh: 100, QueueLow: 10,
			StepUp: 0.2, StepDown: 0.1},
	})
	overload(e, 3000)
	if e.Shedder().DropRate() == 0 {
		t.Fatal("expected a raised drop rate")
	}
	// Let the engine fully drain and keep stepping with light load: the
	// control loop must walk the rate back to zero.
	for i := 0; i < 200; i++ {
		e.Ingest("in", tuple(1, 1))
		e.RunUntilIdle(0)
	}
	if got := e.Shedder().DropRate(); got != 0 {
		t.Errorf("drop rate after recovery = %g, want 0", got)
	}
}

// TestQoSShedBeatsRandom is the E03 headline: at comparable drop volumes,
// value-aware shedding preserves more utility than random shedding
// because it discards the lowest-value tuples first.
func TestQoSShedBeatsRandom(t *testing.T) {
	run := func(mode ShedMode) OutputReport {
		cfg := &ShedConfig{
			Mode: mode, QueueHigh: 200, QueueLow: 20, Seed: 42,
			ValueExpr: "B", ValueGraph: valueGraph(), InputSchema: "in",
		}
		e, _ := newVirtualEngine(t, shedNet(t), Config{
			DefaultBoxCost: 200,
			Shed:           cfg,
		})
		overload(e, 20000)
		e.Drain()
		rep, _ := e.Output("out")
		return rep
	}
	random := run(ShedRandom)
	smart := run(ShedQoS)
	if smart.Dropped == 0 || random.Dropped == 0 {
		t.Fatalf("both policies must shed under this load: random=%d smart=%d",
			random.Dropped, smart.Dropped)
	}
	if smart.Utility <= random.Utility {
		t.Errorf("QoS shedding utility %.3f should beat random %.3f",
			smart.Utility, random.Utility)
	}
}

func TestShedderConfigValidation(t *testing.T) {
	net := shedNet(t)
	bad := []ShedConfig{
		{Mode: ShedQoS}, // missing everything
		{Mode: ShedQoS, ValueExpr: "B", ValueGraph: valueGraph()}, // missing input
		{Mode: ShedQoS, ValueExpr: "B", ValueGraph: valueGraph(), InputSchema: "nope"},
		{Mode: ShedQoS, ValueExpr: "((", ValueGraph: valueGraph(), InputSchema: "in"},
		{Mode: ShedQoS, ValueExpr: "ghost", ValueGraph: valueGraph(), InputSchema: "in"},
	}
	for i, cfg := range bad {
		if _, err := NewShedder(cfg, net); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	// Defaults are repaired.
	sh, err := NewShedder(ShedConfig{Mode: ShedRandom, QueueHigh: -1}, net)
	if err != nil || sh == nil {
		t.Fatalf("default repair failed: %v", err)
	}
}

func TestShedderDropsLowValueTuplesFirst(t *testing.T) {
	cfg := &ShedConfig{
		Mode: ShedQoS, QueueHigh: 50, QueueLow: 10, Seed: 7,
		ValueExpr: "B", ValueGraph: valueGraph(), InputSchema: "in",
	}
	e, _ := newVirtualEngine(t, shedNet(t), Config{DefaultBoxCost: 500, Shed: cfg})
	var deliveredB []int64
	e.OnOutput(func(_ string, tp stream.Tuple) {
		deliveredB = append(deliveredB, tp.Field(1).AsInt())
	})
	overload(e, 10000)
	e.Drain()
	if e.Shedder().Dropped() == 0 {
		t.Fatal("expected shedding")
	}
	var sum float64
	for _, b := range deliveredB {
		sum += float64(b)
	}
	meanDelivered := sum / float64(len(deliveredB))
	// Input B is uniform [0,100) (mean ~49.5); value-aware shedding must
	// leave the delivered mean clearly above it.
	if meanDelivered < 55 {
		t.Errorf("mean delivered B = %.1f; low-value tuples were not preferentially dropped", meanDelivered)
	}
}
