package medusa

import (
	"testing"

	"repro/internal/op"
	"repro/internal/stream"
)

var qSchema = stream.MustSchema("quotes",
	stream.Field{Name: "sym", Kind: stream.KindString},
	stream.Field{Name: "price", Kind: stream.KindFloat},
)

func TestAccountTransfers(t *testing.T) {
	var a, b Account
	a.Credit(100)
	if err := Transfer(&a, &b, 30); err != nil {
		t.Fatal(err)
	}
	if a.Balance() != 70 || b.Balance() != 30 {
		t.Errorf("balances = %g, %g", a.Balance(), b.Balance())
	}
	if err := Transfer(&a, &b, -1); err == nil {
		t.Error("negative transfer should fail")
	}
	if err := a.Credit(-1); err == nil {
		t.Error("negative credit should fail")
	}
	if err := a.Debit(-1); err == nil {
		t.Error("negative debit should fail")
	}
	// Accounts may go negative (a participant operating at a loss).
	b.Debit(1000)
	if b.Balance() >= 0 {
		t.Error("debit should be allowed to go negative")
	}
}

func TestOffers(t *testing.T) {
	p := NewParticipant("mit")
	if err := p.Offer(Offer{Stream: "quotes", Schema: qSchema, PricePerMsg: 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := p.Offer(Offer{Stream: "quotes", Schema: qSchema}); err == nil {
		t.Error("duplicate offer should fail")
	}
	if err := p.Offer(Offer{Stream: "", Schema: qSchema}); err == nil {
		t.Error("empty stream should fail")
	}
	if err := p.Offer(Offer{Stream: "x", Schema: qSchema, PricePerMsg: -1}); err == nil {
		t.Error("negative price should fail")
	}
	o, ok := p.OfferFor("quotes")
	if !ok || o.PricePerMsg != 0.01 {
		t.Errorf("OfferFor = %+v, %v", o, ok)
	}
}

func TestRemoteDefinition(t *testing.T) {
	host := NewParticipant("brown")
	spec := op.Spec{Kind: "filter", Params: map[string]string{
		"predicate": `(price > 100)`}}
	// Unauthorized requester is refused.
	if err := RemoteDefine("mit", host, "threshold", spec); err == nil {
		t.Fatal("unauthorized remote definition must fail")
	}
	host.Authorize("mit")
	if !host.Authorized("mit") || host.Authorized("cmu") {
		t.Fatal("authorization state wrong")
	}
	if err := RemoteDefine("mit", host, "threshold", spec); err != nil {
		t.Fatal(err)
	}
	// Redefinition under the same name fails.
	if err := RemoteDefine("mit", host, "threshold", spec); err == nil {
		t.Error("duplicate remote definition should fail")
	}
	// The host can rebuild the operator from the stored spec.
	got, ok := host.RemoteDefinition("threshold")
	if !ok {
		t.Fatal("definition missing")
	}
	if _, err := op.Build(got); err != nil {
		t.Fatal(err)
	}
	// Specs the host cannot instantiate are refused.
	if err := RemoteDefine("mit", host, "bad", op.Spec{Kind: "warpdrive"}); err == nil {
		t.Error("uninstantiable spec should fail")
	}
	host.Revoke("mit")
	if err := RemoteDefine("mit", host, "another", spec); err == nil {
		t.Error("revoked requester should fail")
	}
}

func TestContentContractValidate(t *testing.T) {
	ok := &ContentContract{ID: "c", Stream: "s", Sender: "a", Receiver: "b", PricePerMsg: 0.1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*ContentContract{
		{ID: "x", Sender: "a", Receiver: "b"},                                // no stream
		{ID: "x", Stream: "s", Sender: "a", Receiver: "a"},                   // self-dealing
		{ID: "x", Stream: "s", Sender: "a", Receiver: "b", PricePerMsg: -1},  // negative
		{ID: "x", Stream: "s", Sender: "a", Receiver: "b", Availability: 2},  // bad availability
		{ID: "x", Stream: "s", Sender: "a", Receiver: "b", Subscription: -5}, // negative sub
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("contract %d should be invalid", i)
		}
	}
}

func TestContentContractSettle(t *testing.T) {
	sender, receiver := NewParticipant("a"), NewParticipant("b")
	receiver.Account.Credit(100)
	c := &ContentContract{
		ID: "c1", Stream: "s", Sender: "a", Receiver: "b",
		PricePerMsg: 0.1, Subscription: 10, Availability: 0.99, Active: true,
	}
	paid, err := c.Settle(sender, receiver, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if paid != 20 { // 100 msgs * 0.1 + 10 subscription
		t.Errorf("paid = %g, want 20", paid)
	}
	if sender.Account.Balance() != 20 || receiver.Account.Balance() != 80 {
		t.Errorf("balances: %g, %g", sender.Account.Balance(), receiver.Account.Balance())
	}
	// Missed availability prorates the subscription.
	paid, err = c.Settle(sender, receiver, 0, 0.495)
	if err != nil {
		t.Fatal(err)
	}
	if paid != 5 { // 10 * 0.495/0.99
		t.Errorf("prorated = %g, want 5", paid)
	}
	// Inactive contracts cannot settle; mismatched parties cannot settle.
	c.Active = false
	if _, err := c.Settle(sender, receiver, 1, 1); err == nil {
		t.Error("inactive settle should fail")
	}
	c.Active = true
	if _, err := c.Settle(receiver, sender, 1, 1); err == nil {
		t.Error("party mismatch should fail")
	}
}

func TestSuggestedContractValidate(t *testing.T) {
	ok := &SuggestedContract{From: "a", To: "b", Stream: "s", AlternateSender: "c"}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&SuggestedContract{From: "a", To: "b", AlternateSender: "b"}).Validate(); err == nil {
		t.Error("self-alternate should fail")
	}
	if err := (&SuggestedContract{}).Validate(); err == nil {
		t.Error("empty suggestion should fail")
	}
}

func TestMovementContractSwitching(t *testing.T) {
	mkPlan := func(name string, b int) MovementPlan {
		return MovementPlan{Name: name, Boundary: b, Contract: &ContentContract{
			ID: name, Stream: "s", Sender: "a", Receiver: "b", PricePerMsg: 0.1}}
	}
	mc, err := NewMovementContract("m", "a", "b",
		[]MovementPlan{mkPlan("p0", 0), mkPlan("p1", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := mc.Active(); got.Name != "p0" || !got.Contract.Active {
		t.Fatalf("initial active = %+v", got)
	}
	if err := mc.Switch("p1"); err != nil {
		t.Fatal(err)
	}
	if got := mc.Active(); got.Name != "p1" {
		t.Fatal("switch did not take")
	}
	plans := mc.Plans()
	if plans[0].Contract.Active || !plans[1].Contract.Active {
		t.Error("content contract activation must follow the switch")
	}
	if mc.Switches() != 1 {
		t.Errorf("switches = %d", mc.Switches())
	}
	// Switching to the active plan is a no-op; unknown plans fail.
	if err := mc.Switch("p1"); err != nil || mc.Switches() != 1 {
		t.Error("no-op switch miscounted")
	}
	if err := mc.Switch("nope"); err == nil {
		t.Error("unknown plan should fail")
	}
	// Cancellation freezes the contract.
	mc.Cancel()
	if !mc.Cancelled() {
		t.Error("cancel flag lost")
	}
	if err := mc.Switch("p0"); err == nil {
		t.Error("switch after cancel should fail")
	}
	// Construction errors.
	if _, err := NewMovementContract("m", "a", "b", nil); err == nil {
		t.Error("empty plan set should fail")
	}
	if _, err := NewMovementContract("m", "a", "b",
		[]MovementPlan{{Name: "x"}}); err == nil {
		t.Error("plan without contract should fail")
	}
}

func marketWith(t *testing.T, caps []float64) (*Market, []*Participant) {
	t.Helper()
	var parts []*Participant
	econ := map[string]Econ{}
	for i, c := range caps {
		p := NewParticipant(string(rune('A' + i)))
		parts = append(parts, p)
		econ[p.Name] = Econ{Capacity: c, CostPerWork: 0.001}
	}
	m, err := NewMarket(parts, econ)
	if err != nil {
		t.Fatal(err)
	}
	return m, parts
}

func evenStages(n int) []Stage {
	out := make([]Stage, n)
	for i := range out {
		out[i] = Stage{Name: string(rune('s' + i)), Work: 1, ValueAdd: 0.01}
	}
	return out
}

func TestMarketValidation(t *testing.T) {
	if _, err := NewMarket(nil, nil); err == nil {
		t.Error("empty market should fail")
	}
	m, _ := marketWith(t, []float64{100, 100})
	if _, err := m.AddQuery("q", 0.01, nil, 10, []int{0}); err == nil {
		t.Error("no stages should fail")
	}
	if _, err := m.AddQuery("q", 0.01, evenStages(4), 10, []int{9}); err == nil {
		t.Error("out-of-range cut should fail")
	}
	if _, err := m.AddQuery("q", 0.01, evenStages(4), 10, []int{1, 2}); err == nil {
		t.Error("wrong cut count should fail")
	}
}

// TestMarketAnneals is the §7.2 headline: starting with all processing
// piled on one overloaded participant, bilateral movement-contract
// switches anneal the economy to a stable, balanced, profitable state.
func TestMarketAnneals(t *testing.T) {
	m, parts := marketWith(t, []float64{100, 100, 100})
	// 240 units/round of work, all initially at A (util 2.4).
	if _, err := m.AddQuery("q", 0.01, evenStages(12), 20, []int{12, 12}); err != nil {
		t.Fatal(err)
	}
	first := m.Round()
	if first.Utilization["A"] < 2.0 {
		t.Fatalf("initial overload missing: %+v", first.Utilization)
	}
	rep, stable := m.RunUntilStable(100)
	if !stable {
		t.Fatalf("market did not stabilize: %+v", rep)
	}
	for p, u := range rep.Utilization {
		if u > 1.01 {
			t.Errorf("participant %s still overloaded at %.2f", p, u)
		}
	}
	if rep.Imbalance > 1.4 {
		t.Errorf("imbalance after annealing = %.2f", rep.Imbalance)
	}
	// In the stable state every participant profits.
	for p, pr := range rep.Profit {
		if pr <= 0 {
			t.Errorf("participant %s profit = %g; contracts must make money", p, pr)
		}
	}
	// Accounts reflect accumulated settlements.
	for _, p := range parts {
		if p.Account.Balance() == 0 {
			t.Errorf("participant %s never settled", p.Name)
		}
	}
}

func TestMarketStableStaysStable(t *testing.T) {
	m, _ := marketWith(t, []float64{100, 100})
	// Perfectly split from the start.
	if _, err := m.AddQuery("q", 0.01, evenStages(10), 10, []int{5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if rep := m.Round(); rep.Switches != 0 {
			t.Fatalf("balanced market should not thrash: %+v", rep)
		}
	}
}

func TestMarketLoadSpikeShifts(t *testing.T) {
	m, _ := marketWith(t, []float64{100, 100})
	q, err := m.AddQuery("q", 0.01, evenStages(10), 8, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	m.RunUntilStable(20)
	before := q.Cuts()[0]
	// Load spike: rate doubles and one side gets extra background work.
	q.Rate = 19
	rep, stable := m.RunUntilStable(50)
	if !stable {
		t.Fatalf("spike did not re-stabilize: %+v", rep)
	}
	for p, u := range rep.Utilization {
		if u > 1.01 {
			t.Errorf("%s overloaded after spike: %.2f", p, u)
		}
	}
	_ = before
	if total := q.Cuts()[0]; total < 4 || total > 6 {
		t.Errorf("cut drifted oddly: %d", total)
	}
	if q.contracts[0].Switches() == 0 && rep.Imbalance > 1.2 {
		t.Error("spike should have caused movement or stayed balanced")
	}
}

func TestMarketQueryAccessors(t *testing.T) {
	m, _ := marketWith(t, []float64{50, 50})
	q, err := m.AddQuery("q", 0.02, evenStages(4), 5, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if diff := q.FinalPrice() - (0.02 + 4*0.01); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("FinalPrice = %g", q.FinalPrice())
	}
	if q.Owner(0) != 0 || q.Owner(3) != 1 {
		t.Error("Owner mapping wrong")
	}
	if got := m.Participants(); len(got) != 2 || got[0] != "A" {
		t.Errorf("participants = %v", got)
	}
	if len(m.Queries()) != 1 {
		t.Error("queries accessor wrong")
	}
}
