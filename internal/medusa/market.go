package medusa

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Econ is one participant's cost structure in the agoric model: processing
// capacity per round and the dollar cost of one unit of work.
type Econ struct {
	Capacity    float64
	CostPerWork float64
}

// Stage is one step of a distributed query pipeline: the work it costs per
// message and the value it adds to the stream's per-message price — "the
// receiver performs query-processing services on the message stream that
// presumably increases its value, at some cost" (§3.2).
type Stage struct {
	Name     string
	Work     float64
	ValueAdd float64
}

// MarketQuery is a query pipeline flowing along the market's participant
// chain. Stages are partitioned contiguously by cut points: cuts[i] is the
// index of the first stage owned by participant i+1. One movement contract
// per adjacent pair holds a plan for every feasible cut position.
type MarketQuery struct {
	Name      string
	BasePrice float64
	Stages    []Stage
	Rate      float64 // messages per round

	cuts      []int
	contracts []*MovementContract
}

// Cuts returns the current cut vector.
func (q *MarketQuery) Cuts() []int { return append([]int(nil), q.cuts...) }

// Owner returns the chain position owning stage s.
func (q *MarketQuery) Owner(s int) int {
	for i, c := range q.cuts {
		if s < c {
			return i
		}
	}
	return len(q.cuts)
}

// Switches returns the total movement-contract plan substitutions this
// query's boundaries have performed.
func (q *MarketQuery) Switches() int {
	total := 0
	for _, mc := range q.contracts {
		total += mc.Switches()
	}
	return total
}

// FinalPrice is what the end consumer pays per delivered message.
func (q *MarketQuery) FinalPrice() float64 {
	p := q.BasePrice
	for _, s := range q.Stages {
		p += s.ValueAdd
	}
	return p
}

// priceAt returns the per-message price of the stream entering stage s.
func (q *MarketQuery) priceAt(s int) float64 {
	p := q.BasePrice
	for i := 0; i < s; i++ {
		p += q.Stages[i].ValueAdd
	}
	return p
}

// Market is the §7.2 economy: participants arranged in a processing chain,
// queries partitioned across them by movement-contract plans, and one
// oracle per participant deciding, pairwise, whether an alternate plan is
// preferable. The hope the paper expresses — that mostly bilateral
// contracts "allow the system to anneal to a state where the economy is
// stable" — is what the Round loop lets experiments observe.
type Market struct {
	order   []string
	parts   map[string]*Participant
	econ    map[string]Econ
	queries []*MarketQuery
	rounds  int

	// TargetUtil is the utilization above which an oracle seeks to shed
	// load even at a profit loss, and below which a neighbor accepts it
	// (as long as accepting costs the neighbor nothing). §7.2: oracles
	// "must carefully monitor local load conditions, and be aware of the
	// economic model" — load relief first, economics as the constraint.
	TargetUtil float64

	// lm, when set, supplies the relief oracle's utilization readings from
	// the gossiped statistics plane (windowed averages) instead of this
	// round's instantaneous load — the same §5.2 stability fix the Aurora*
	// load-share daemons use, applied across administrative boundaries.
	lm *stats.LoadMap
}

// SetLoadMap attaches a gossiped load map: participants found in it have
// their relief-oracle utilization read from their windowed digest, so a
// one-round spike cannot trigger cross-participant load movement. Nodes
// absent from the map fall back to instantaneous readings.
func (m *Market) SetLoadMap(lm *stats.LoadMap) { m.lm = lm }

// utilOf returns a participant's utilization for the relief oracle.
func (m *Market) utilOf(p string, load map[string]float64) float64 {
	if m.lm != nil {
		if d, ok := m.lm.Get(p); ok {
			return d.Util
		}
	}
	return load[p] / m.econ[p].Capacity
}

// NewMarket creates a market over the participants in chain order.
func NewMarket(parts []*Participant, econ map[string]Econ) (*Market, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("medusa: market needs at least two participants")
	}
	m := &Market{parts: map[string]*Participant{}, econ: econ, TargetUtil: 0.9}
	for _, p := range parts {
		if _, dup := m.parts[p.Name]; dup {
			return nil, fmt.Errorf("medusa: duplicate participant %q", p.Name)
		}
		e, ok := econ[p.Name]
		if !ok || e.Capacity <= 0 || e.CostPerWork < 0 {
			return nil, fmt.Errorf("medusa: participant %q needs positive capacity", p.Name)
		}
		m.parts[p.Name] = p
		m.order = append(m.order, p.Name)
	}
	return m, nil
}

// AddQuery registers a pipeline with initial cut points (len(parts)-1
// non-decreasing stage indices). Movement contracts are created for every
// adjacent pair, one plan per feasible boundary position.
func (m *Market) AddQuery(name string, basePrice float64, stages []Stage, rate float64, cuts []int) (*MarketQuery, error) {
	if len(stages) == 0 || rate <= 0 {
		return nil, fmt.Errorf("medusa: query %q needs stages and positive rate", name)
	}
	if len(cuts) != len(m.order)-1 {
		return nil, fmt.Errorf("medusa: query %q needs %d cuts", name, len(m.order)-1)
	}
	prev := 0
	for _, c := range cuts {
		if c < prev || c > len(stages) {
			return nil, fmt.Errorf("medusa: query %q has invalid cuts %v", name, cuts)
		}
		prev = c
	}
	q := &MarketQuery{
		Name:      name,
		BasePrice: basePrice,
		Stages:    stages,
		Rate:      rate,
		cuts:      append([]int(nil), cuts...),
	}
	// One movement contract per adjacent pair: a plan for every boundary
	// position, each paired with a content contract priced at that
	// boundary's stream price.
	for i := 0; i+1 < len(m.order); i++ {
		var plans []MovementPlan
		for b := 0; b <= len(stages); b++ {
			plans = append(plans, MovementPlan{
				Name:     fmt.Sprintf("cut=%d", b),
				Boundary: b,
				Contract: &ContentContract{
					ID:          fmt.Sprintf("%s/%s-%s/cut%d", name, m.order[i], m.order[i+1], b),
					Stream:      name,
					Sender:      m.order[i],
					Receiver:    m.order[i+1],
					PricePerMsg: q.priceAt(b),
				},
			})
		}
		mc, err := NewMovementContract(
			fmt.Sprintf("%s/%s-%s", name, m.order[i], m.order[i+1]),
			m.order[i], m.order[i+1], plans)
		if err != nil {
			return nil, err
		}
		if err := mc.Switch(fmt.Sprintf("cut=%d", cuts[i])); err != nil {
			return nil, err
		}
		q.contracts = append(q.contracts, mc)
	}
	m.queries = append(m.queries, q)
	return q, nil
}

// RoundReport summarizes one market round.
type RoundReport struct {
	Round       int
	Utilization map[string]float64
	Profit      map[string]float64
	Switches    int
	// Imbalance is max utilization / mean utilization across participants.
	Imbalance float64
}

// evaluate computes per-participant load, delivered fraction, and profit
// for a hypothetical cut assignment, without touching accounts.
//
// Overload and flow interact: an overloaded participant delivers only a
// capacity fraction of its messages, which reduces the work (and revenue)
// of everyone downstream, which in turn changes their delivered fractions.
// A short fixed-point iteration resolves the mutual dependence. This
// coupling is what makes load diffuse down the chain: a saturated
// mid-chain participant both loses revenue and receives a thinner inbound
// stream, so shedding to an idle neighbor is profitable for both sides.
func (m *Market) evaluate(cutsOf func(*MarketQuery) []int) (load, df, profit map[string]float64) {
	df = map[string]float64{}
	for _, p := range m.order {
		df[p] = 1.0
	}
	for iter := 0; iter < 12; iter++ {
		load = map[string]float64{}
		for _, p := range m.order {
			load[p] = 0
		}
		for _, q := range m.queries {
			cuts := cutsOf(q)
			running := q.Rate
			for i, p := range m.order {
				first, last := stageRange(cuts, i, len(q.Stages))
				for s := first; s < last; s++ {
					load[p] += q.Stages[s].Work * running
				}
				if last > first {
					running *= df[p]
				}
			}
		}
		changed := false
		for _, p := range m.order {
			want := 1.0
			if cap := m.econ[p].Capacity; load[p] > cap {
				want = cap / load[p]
			}
			if diff := want - df[p]; diff > 1e-9 || diff < -1e-9 {
				df[p] = want
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	profit = map[string]float64{}
	for _, p := range m.order {
		profit[p] = 0
	}
	for _, q := range m.queries {
		cuts := cutsOf(q)
		running := q.Rate
		for i, p := range m.order {
			first, last := stageRange(cuts, i, len(q.Stages))
			if first == last {
				continue // owns no stages of this query
			}
			// Buy the incoming stream (from upstream participant or the
			// external source at the base price).
			profit[p] -= q.priceAt(first) * running
			// Process: cost on arriving volume, then overload losses.
			for s := first; s < last; s++ {
				profit[p] -= q.Stages[s].Work * running * m.econ[p].CostPerWork
			}
			running *= df[p]
			// Sell the outgoing stream (to the next owner or the final
			// consumer at the full price).
			profit[p] += q.priceAt(last) * running
		}
	}
	return load, df, profit
}

// profits is the profit slice of evaluate.
func (m *Market) profits(cutsOf func(*MarketQuery) []int) map[string]float64 {
	_, _, profit := m.evaluate(cutsOf)
	return profit
}

// validCuts reports whether a cut vector is non-decreasing and in range.
func validCuts(cuts []int, stages int) bool {
	prev := 0
	for _, c := range cuts {
		if c < prev || c > stages {
			return false
		}
		prev = c
	}
	return true
}

// stageRange returns participant i's [first, last) stage interval.
func stageRange(cuts []int, i, total int) (int, int) {
	first := 0
	if i > 0 {
		first = cuts[i-1]
	}
	last := total
	if i < len(cuts) {
		last = cuts[i]
	}
	if first > last {
		first = last
	}
	return first, last
}

// Round executes one market round: settle this round's money through the
// participant accounts, then run the oracle pass in which adjacent pairs
// consider switching their movement-contract plans. A switch happens only
// when both oracles find the alternate plan preferable (strictly higher
// expected profit for each), mirroring §7.2's bilateral agreement.
func (m *Market) Round() RoundReport {
	m.rounds++
	cur := func(q *MarketQuery) []int { return q.cuts }
	load, _, profit := m.evaluate(cur)

	// Settle through the real accounts.
	for p, pr := range profit {
		if pr >= 0 {
			m.parts[p].Account.Credit(pr)
		} else {
			m.parts[p].Account.Debit(-pr)
		}
	}

	// Oracle pass: each adjacent pair, each query, tries moving its
	// boundary one stage either way. A substitution happens when either
	// (a) both sides strictly profit, or (b) the giving side is above the
	// target utilization, the taking side stays at or below it, and the
	// taking side does not lose money — the load-relief behaviour the
	// movement contracts exist for.
	switches := 0
	for _, q := range m.queries {
		for pair := 0; pair+1 < len(m.order); pair++ {
			left, right := m.order[pair], m.order[pair+1]
			baseLoad, _, baseProfit := m.evaluate(cur)

			// Candidate boundary adjustments: this pair's boundary moves
			// one stage, optionally together with the next boundary (a
			// chained relief negotiated among three parties), or as a
			// cascade shifting one stage through every boundary from
			// here to the end of the chain — the multi-party re-layout
			// that §7.2's suggested contracts make possible.
			type cand struct {
				d1, d2  int
				cascade bool
			}
			cands := []cand{{d1: -1}, {d1: 1}}
			if pair+1 < len(q.cuts) {
				cands = append(cands,
					cand{d1: -1, d2: -1}, cand{d1: 1, d2: 1},
					cand{d1: -1, cascade: true}, cand{d1: 1, cascade: true})
			}

			var bestCuts []int
			bestScore := 0.0
			for _, c := range cands {
				cuts := q.Cuts()
				if c.cascade {
					for j := pair; j < len(cuts); j++ {
						cuts[j] += c.d1
					}
				} else {
					cuts[pair] += c.d1
					if c.d2 != 0 {
						cuts[pair+1] += c.d2
					}
				}
				if !validCuts(cuts, len(q.Stages)) {
					continue
				}
				hypCuts := func(qq *MarketQuery) []int {
					if qq == q {
						return append([]int(nil), cuts...)
					}
					return qq.Cuts()
				}
				hypLoad, _, hypProfit := m.evaluate(hypCuts)

				// Pareto-economic acceptance: nobody loses, somebody
				// strictly gains.
				minGain, totalGain := math.Inf(1), 0.0
				for _, p := range m.order {
					g := hypProfit[p] - baseProfit[p]
					totalGain += g
					if g < minGain {
						minGain = g
					}
				}
				economic := minGain >= -1e-9 && totalGain > 1e-9

				// Load-relief acceptance for the simple single-boundary
				// move: the giver is above target utilization; the taker
				// stays within its capacity and clearly below the giver
				// (downhill-only, so relief cannot oscillate); and the
				// taker loses at most a negligible amount. Movement
				// contracts exist exactly for this: "oracles must
				// carefully monitor local load conditions" (§7.2).
				relief := false
				if c.d2 == 0 && !c.cascade {
					giver, taker := left, right
					if c.d1 > 0 {
						giver, taker = right, left
					}
					giverUtil := m.utilOf(giver, baseLoad)
					takerAfter := hypLoad[taker] / m.econ[taker].Capacity
					takerGain := hypProfit[taker] - baseProfit[taker]
					relief = giverUtil > m.TargetUtil &&
						takerAfter <= 1+1e-9 &&
						takerAfter+0.05 < giverUtil &&
						takerGain >= -1e-3
				}
				if !economic && !relief {
					continue
				}
				score := totalGain
				if relief && !economic {
					score = 1e-6 // relief moves rank below any economic gain
				}
				if score > bestScore {
					bestCuts = cuts
					bestScore = score
				}
			}
			if bestCuts != nil {
				moved := false
				for i := range bestCuts {
					if bestCuts[i] == q.cuts[i] {
						continue
					}
					if err := q.contracts[i].Switch(fmt.Sprintf("cut=%d", bestCuts[i])); err == nil {
						q.cuts[i] = bestCuts[i]
						moved = true
					}
				}
				if moved {
					switches++
				}
			}
		}
	}

	// Report.
	util := map[string]float64{}
	var maxU, sumU float64
	for _, p := range m.order {
		u := load[p] / m.econ[p].Capacity
		util[p] = u
		sumU += u
		if u > maxU {
			maxU = u
		}
	}
	imb := math.Inf(1)
	if sumU > 0 {
		imb = maxU / (sumU / float64(len(m.order)))
	}
	return RoundReport{
		Round:       m.rounds,
		Utilization: util,
		Profit:      profit,
		Switches:    switches,
		Imbalance:   imb,
	}
}

// RunUntilStable rounds until a round makes no switches (returning the
// last report) or maxRounds elapse.
func (m *Market) RunUntilStable(maxRounds int) (RoundReport, bool) {
	var rep RoundReport
	for i := 0; i < maxRounds; i++ {
		rep = m.Round()
		if rep.Switches == 0 && i > 0 {
			return rep, true
		}
	}
	return rep, false
}

// Queries returns the registered queries.
func (m *Market) Queries() []*MarketQuery { return m.queries }

// Participants returns the chain order.
func (m *Market) Participants() []string { return append([]string(nil), m.order...) }
