package medusa

import (
	"math"
	"testing"
)

// TestMarketCutTable drives AddQuery's cut validation through the edge
// cases of the contract-matching machinery: boundaries at the extremes,
// empty middle participants, and every rejection path.
func TestMarketCutTable(t *testing.T) {
	cases := []struct {
		name    string
		caps    []float64
		stages  int
		cuts    []int
		wantErr bool
	}{
		{"mid split", []float64{100, 100}, 4, []int{2}, false},
		{"all downstream", []float64{100, 100}, 4, []int{0}, false},
		{"all upstream", []float64{100, 100}, 4, []int{4}, false},
		{"empty middle", []float64{100, 100, 100}, 6, []int{3, 3}, false},
		{"empty first and middle", []float64{100, 100, 100}, 6, []int{0, 0}, false},
		{"decreasing cuts", []float64{100, 100, 100}, 6, []int{4, 2}, true},
		{"cut beyond stages", []float64{100, 100}, 4, []int{5}, true},
		{"negative cut", []float64{100, 100}, 4, []int{-1}, true},
		{"too few cuts", []float64{100, 100, 100}, 6, []int{3}, true},
		{"too many cuts", []float64{100, 100}, 4, []int{1, 2}, true},
		{"zero rate", []float64{100, 100}, 4, nil, true}, // rate handled below
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m, _ := marketWith(t, tc.caps)
			rate := 10.0
			stages := evenStages(tc.stages)
			cuts := tc.cuts
			if tc.name == "zero rate" {
				rate, cuts = 0, []int{2}
			}
			_, err := m.AddQuery("q", 0.01, stages, rate, cuts)
			if (err != nil) != tc.wantErr {
				t.Fatalf("AddQuery(cuts=%v) error = %v, wantErr = %v", cuts, err, tc.wantErr)
			}
		})
	}
}

// TestMarketOwnerTable pins the cut-vector -> stage-owner mapping,
// including boundaries at 0 and len(stages) and empty middle owners.
func TestMarketOwnerTable(t *testing.T) {
	cases := []struct {
		name   string
		caps   []float64
		stages int
		cuts   []int
		owners []int // expected owner index per stage
	}{
		{"even thirds", []float64{1, 1, 1}, 6, []int{2, 4}, []int{0, 0, 1, 1, 2, 2}},
		{"first empty", []float64{1, 1, 1}, 6, []int{0, 3}, []int{1, 1, 1, 2, 2, 2}},
		{"middle empty", []float64{1, 1, 1}, 6, []int{3, 3}, []int{0, 0, 0, 2, 2, 2}},
		{"last empty", []float64{1, 1, 1}, 6, []int{3, 6}, []int{0, 0, 0, 1, 1, 1}},
		{"all on first", []float64{1, 1}, 4, []int{4}, []int{0, 0, 0, 0}},
		{"all on last", []float64{1, 1}, 4, []int{0}, []int{1, 1, 1, 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m, _ := marketWith(t, tc.caps)
			q, err := m.AddQuery("q", 0.01, evenStages(tc.stages), 10, tc.cuts)
			if err != nil {
				t.Fatal(err)
			}
			for s, want := range tc.owners {
				if got := q.Owner(s); got != want {
					t.Errorf("Owner(%d) = %d, want %d (cuts %v)", s, got, want, tc.cuts)
				}
			}
		})
	}
}

// TestMovementPlanContractMatching checks the plan/content-contract
// pairing AddQuery builds for each boundary pair: one plan per feasible
// boundary, each priced at the stream price entering that boundary, with
// exactly the initial cut's plan (and contract) active.
func TestMovementPlanContractMatching(t *testing.T) {
	m, _ := marketWith(t, []float64{100, 100, 100})
	stages := evenStages(5)
	base := 0.02
	q, err := m.AddQuery("q", base, stages, 10, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.contracts) != 2 {
		t.Fatalf("want one movement contract per adjacent pair, got %d", len(q.contracts))
	}
	for pair, mc := range q.contracts {
		plans := mc.Plans()
		if len(plans) != len(stages)+1 {
			t.Fatalf("pair %d: %d plans, want one per boundary 0..%d", pair, len(plans), len(stages))
		}
		activeSeen := 0
		for _, p := range plans {
			// Contract price must match the value of the stream crossing
			// that boundary: base price plus the value added below it.
			want := base
			for i := 0; i < p.Boundary; i++ {
				want += stages[i].ValueAdd
			}
			if math.Abs(p.Contract.PricePerMsg-want) > 1e-12 {
				t.Errorf("pair %d boundary %d: price %g, want %g", pair, p.Boundary, p.Contract.PricePerMsg, want)
			}
			if p.Contract.Sender == p.Contract.Receiver {
				t.Errorf("pair %d: degenerate contract %q", pair, p.Contract.ID)
			}
			if p.Contract.Active {
				activeSeen++
				if p.Boundary != q.Cuts()[pair] {
					t.Errorf("pair %d: active plan at boundary %d, want cut %d", pair, p.Boundary, q.Cuts()[pair])
				}
			}
		}
		if activeSeen != 1 {
			t.Errorf("pair %d: %d active contracts, want exactly 1", pair, activeSeen)
		}
		if mc.Active().Boundary != q.Cuts()[pair] {
			t.Errorf("pair %d: active boundary %d != cut %d", pair, mc.Active().Boundary, q.Cuts()[pair])
		}
	}

	// Unknown plans are rejected; cancellation freezes the active plan.
	mc := q.contracts[0]
	if err := mc.Switch("cut=99"); err == nil {
		t.Error("switch to unknown plan should fail")
	}
	before := mc.Active().Name
	mc.Cancel()
	if err := mc.Switch("cut=0"); err == nil {
		t.Error("switch on cancelled contract should fail")
	}
	if mc.Active().Name != before {
		t.Errorf("cancelled contract changed active plan: %s -> %s", before, mc.Active().Name)
	}
}

// TestMarketEmptyOwnerSettlement: a participant owning no stages does no
// work, spends nothing, and earns nothing — the stream passes it by.
func TestMarketEmptyOwnerSettlement(t *testing.T) {
	m, parts := marketWith(t, []float64{100, 100, 100})
	if _, err := m.AddQuery("q", 0.01, evenStages(6), 10, []int{3, 3}); err != nil {
		t.Fatal(err)
	}
	rep := m.Round()
	if u := rep.Utilization["B"]; u != 0 {
		t.Errorf("empty owner utilization = %g, want 0", u)
	}
	if pr := rep.Profit["B"]; pr != 0 {
		t.Errorf("empty owner profit = %g, want 0", pr)
	}
	if b := parts[1].Account.Balance(); b != 0 {
		t.Errorf("empty owner settled %g, want 0", b)
	}
	for _, p := range []string{"A", "C"} {
		if rep.Profit[p] <= 0 {
			t.Errorf("working participant %s profit = %g", p, rep.Profit[p])
		}
	}
}
