// Package medusa implements the federated operation layer of §3.2 and
// §7.2: autonomous participants with dollar accounts, the three contract
// types (content, suggested, movement), remote definition of operators
// across participant boundaries (§4.4), and an agoric market simulation in
// which per-participant oracles switch among the distributed query plans
// of their movement contracts to balance load across administrative
// boundaries in an economically viable way.
package medusa

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/op"
	"repro/internal/stream"
)

// Account is a participant's dollar account. Medusa uses a market
// mechanism with an underlying currency that backs all contracts (§3.2).
type Account struct {
	mu      sync.Mutex
	balance float64
}

// Balance returns the current balance.
func (a *Account) Balance() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance
}

// Credit adds amount (which must be non-negative) to the account.
func (a *Account) Credit(amount float64) error {
	if amount < 0 {
		return fmt.Errorf("medusa: negative credit %g", amount)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance += amount
	return nil
}

// Debit removes amount from the account; accounts may go negative (a
// participant operating at a loss), which the market experiments watch
// for — participants "are assumed to operate as profit-making entities;
// their contracts have to make money or they will cease operation".
func (a *Account) Debit(amount float64) error {
	if amount < 0 {
		return fmt.Errorf("medusa: negative debit %g", amount)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance -= amount
	return nil
}

// Transfer moves amount from one account to another atomically with
// respect to each account.
func Transfer(from, to *Account, amount float64) error {
	if amount < 0 {
		return fmt.Errorf("medusa: negative transfer %g", amount)
	}
	if err := from.Debit(amount); err != nil {
		return err
	}
	return to.Credit(amount)
}

// Offer is a stream a participant sells: events of the given schema at a
// per-message price.
type Offer struct {
	Stream      string
	Schema      *stream.Schema
	PricePerMsg float64
}

// Participant is a collection of computing devices administered by a
// single entity (§3.2): it owns an account, an intra-participant catalog,
// a set of stream offers, and an authorization list for remote definition.
type Participant struct {
	Name    string
	Account *Account
	Catalog *catalog.Intra

	mu         sync.Mutex
	offers     map[string]Offer
	authorized map[string]bool
	remoteDefs map[string]op.Spec // name -> operator defined here by others
}

// NewParticipant creates a participant with an empty account and catalog.
func NewParticipant(name string) *Participant {
	return &Participant{
		Name:       name,
		Account:    &Account{},
		Catalog:    catalog.NewIntra(name),
		offers:     map[string]Offer{},
		authorized: map[string]bool{},
		remoteDefs: map[string]op.Spec{},
	}
}

// Offer publishes a stream for sale.
func (p *Participant) Offer(o Offer) error {
	if o.Stream == "" || o.Schema == nil {
		return fmt.Errorf("medusa: offer needs stream name and schema")
	}
	if o.PricePerMsg < 0 {
		return fmt.Errorf("medusa: negative price")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.offers[o.Stream]; dup {
		return fmt.Errorf("medusa: stream %q already offered", o.Stream)
	}
	p.offers[o.Stream] = o
	return nil
}

// OfferFor returns the published offer for a stream.
func (p *Participant) OfferFor(streamName string) (Offer, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	o, ok := p.offers[streamName]
	return o, ok
}

// Authorize grants another participant the right to perform remote
// definitions here (§7.2: "if participants authorize each other to do
// remote definitions, then buying participants can easily customize the
// content that they buy").
func (p *Participant) Authorize(other string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.authorized[other] = true
}

// Revoke withdraws a remote-definition authorization.
func (p *Participant) Revoke(other string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.authorized, other)
}

// Authorized reports whether the other participant may remotely define
// operators here.
func (p *Participant) Authorized(other string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.authorized[other]
}

// RemoteDefine instantiates an operator at host on behalf of requester —
// the §4.4 alternative to process migration: "instead of moving a WSort
// box, a participant remotely defines the WSort box at another participant
// and binds it to the appropriate streams within the new domain". The
// operator spec must build against the host's registry (the pre-defined
// operator set the host offers), and the requester must be authorized.
func RemoteDefine(requester string, host *Participant, name string, spec op.Spec) error {
	if !host.Authorized(requester) {
		return fmt.Errorf("medusa: %s has not authorized remote definition by %s",
			host.Name, requester)
	}
	if _, err := op.Build(spec); err != nil {
		return fmt.Errorf("medusa: host %s cannot instantiate %s: %w", host.Name, name, err)
	}
	host.mu.Lock()
	defer host.mu.Unlock()
	if _, dup := host.remoteDefs[name]; dup {
		return fmt.Errorf("medusa: remote definition %q already exists at %s", name, host.Name)
	}
	host.remoteDefs[name] = spec.Clone()
	return nil
}

// RemoteDefinition returns a remotely defined operator's spec.
func (p *Participant) RemoteDefinition(name string) (op.Spec, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.remoteDefs[name]
	if !ok {
		return op.Spec{}, false
	}
	return s.Clone(), true
}
