package medusa

import (
	"testing"

	"repro/internal/stats"
)

// spikeMarket builds the relief fixture: ten equal stages all on A, with
// the rate chosen so A sits at the given utilization. At util 0.95 the
// boundary move is profit-neutral in total (economic acceptance cannot
// fire), so any switch comes from the relief oracle alone.
func spikeMarket(t *testing.T, rate float64) (*Market, *MarketQuery) {
	t.Helper()
	m, _ := marketWith(t, []float64{100, 100})
	q, err := m.AddQuery("q", 0.01, evenStages(10), rate, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	return m, q
}

// TestMarketInstantaneousReliefFlapsOnSpike is the control: with no load
// map attached the relief oracle reads this round's instantaneous load,
// so a single spike round above the target utilization sheds a stage.
func TestMarketInstantaneousReliefFlapsOnSpike(t *testing.T) {
	m, q := spikeMarket(t, 9.5) // util 0.95 > TargetUtil 0.9 this round
	rep := m.Round()
	if rep.Switches == 0 {
		t.Fatalf("instantaneous relief should shed on the spike round: %+v", rep)
	}
	if got := q.Cuts()[0]; got != 9 {
		t.Errorf("cut = %d after relief, want 9", got)
	}
}

// TestMarketWindowedReliefAbsorbsSpike attaches a load map whose windowed
// digests say the spike is one hot window in a calm history: the same
// spike round must not move anything.
func TestMarketWindowedReliefAbsorbsSpike(t *testing.T) {
	m, q := spikeMarket(t, 9.5)
	lm := stats.NewLoadMap("A")
	lm.Update(stats.Digest{Node: "A", Seq: 1, Util: 0.3})
	lm.Update(stats.Digest{Node: "B", Seq: 1, Util: 0.1})
	m.SetLoadMap(lm)
	for i := 0; i < 3; i++ {
		if rep := m.Round(); rep.Switches != 0 {
			t.Fatalf("round %d: windowed relief moved on a one-round spike: %+v", i, rep)
		}
	}
	if got := q.Cuts()[0]; got != 10 {
		t.Errorf("cut = %d, want the initial 10", got)
	}
}

// TestMarketWindowedReliefFiresOnSustainedLoad is the other direction:
// the instantaneous round looks quiet, but the map reports sustained
// overload — the oracle must believe the windowed view and shed.
func TestMarketWindowedReliefFiresOnSustainedLoad(t *testing.T) {
	m, q := spikeMarket(t, 2) // util 0.2 this round: quiet
	if rep := m.Round(); rep.Switches != 0 {
		t.Fatalf("quiet instantaneous round should not move: %+v", rep)
	}
	lm := stats.NewLoadMap("A")
	lm.Update(stats.Digest{Node: "A", Seq: 5, Util: 0.95})
	lm.Update(stats.Digest{Node: "B", Seq: 5, Util: 0.1})
	m.SetLoadMap(lm)
	rep := m.Round()
	if rep.Switches == 0 {
		t.Fatalf("sustained windowed overload should shed: %+v", rep)
	}
	if got := q.Cuts()[0]; got != 9 {
		t.Errorf("cut = %d after relief, want 9", got)
	}
}
