package medusa

import (
	"fmt"
	"sync"
)

// ContentContract covers the payment by a receiving participant for the
// stream sent by a sending participant (§7.2):
//
//	For stream_name, For time period, With availability guarantee,
//	Pay payment.
//
// Payment is either a fixed subscription or a per-message amount.
type ContentContract struct {
	ID           string
	Stream       string // stream name in the sender's namespace
	Sender       string
	Receiver     string
	Period       int64   // duration the sender makes the stream available
	Availability float64 // guaranteed uptime fraction (0 = unspecified)
	PricePerMsg  float64
	Subscription float64
	Active       bool
}

// Validate checks contract well-formedness.
func (c *ContentContract) Validate() error {
	if c.Stream == "" || c.Sender == "" || c.Receiver == "" {
		return fmt.Errorf("medusa: contract %s needs stream, sender, receiver", c.ID)
	}
	if c.Sender == c.Receiver {
		return fmt.Errorf("medusa: contract %s is self-dealing", c.ID)
	}
	if c.PricePerMsg < 0 || c.Subscription < 0 {
		return fmt.Errorf("medusa: contract %s has negative payment", c.ID)
	}
	if c.Availability < 0 || c.Availability > 1 {
		return fmt.Errorf("medusa: contract %s availability out of [0,1]", c.ID)
	}
	return nil
}

// Settle transfers one period's payment for msgs delivered messages from
// the receiver to the sender — "the receiving participant always pays the
// sender for a stream" (§3.2). If the sender missed the availability
// guarantee (delivered uptime below the contracted fraction), the
// subscription part is prorated.
func (c *ContentContract) Settle(sender, receiver *Participant, msgs int64, uptime float64) (float64, error) {
	if !c.Active {
		return 0, fmt.Errorf("medusa: contract %s is not active", c.ID)
	}
	if sender.Name != c.Sender || receiver.Name != c.Receiver {
		return 0, fmt.Errorf("medusa: contract %s parties mismatch", c.ID)
	}
	amount := c.PricePerMsg * float64(msgs)
	sub := c.Subscription
	if c.Availability > 0 && uptime < c.Availability {
		sub *= uptime / c.Availability
	}
	amount += sub
	if err := Transfer(receiver.Account, sender.Account, amount); err != nil {
		return 0, err
	}
	return amount, nil
}

// SuggestedContract is the mechanism for removing a participant from a
// query-processing path (§7.2): the leaving participant suggests to its
// downstream an alternate location (participant and stream name) from
// which to buy the content it currently provides. Receivers may ignore
// suggestions.
type SuggestedContract struct {
	From            string // the suggesting (leaving) participant
	To              string // the receiver being redirected
	Stream          string // the content in question
	AlternateSender string // where to buy instead
	AlternateStream string // the stream's name at the alternate sender
}

// Validate checks suggestion well-formedness.
func (s *SuggestedContract) Validate() error {
	if s.From == "" || s.To == "" || s.AlternateSender == "" {
		return fmt.Errorf("medusa: suggestion needs from, to, alternate")
	}
	if s.AlternateSender == s.To {
		return fmt.Errorf("medusa: suggesting the receiver to itself")
	}
	return nil
}

// MovementPlan is one of the equivalent distributed query plans inside a
// movement contract: the same functionality with load distributed
// differently across the two participants. Boundary is the plan's split
// point (stages below it run at P1, the rest at P2); the plan pairs with
// an inactive content contract priced for that split.
type MovementPlan struct {
	Name     string
	Boundary int
	Contract *ContentContract
}

// MovementContract facilitates load balancing via a form of box sliding
// across participants (§7.2): a set of equivalent remote query plans with
// corresponding inactive content contracts; the two oracles agree to
// switch which plan (and contract) is active.
type MovementContract struct {
	ID     string
	P1, P2 string

	mu     sync.Mutex
	plans  []MovementPlan
	active int
	// cancelled reverts cooperation to the plain content contract.
	cancelled bool
	switches  int
}

// NewMovementContract builds a movement contract over the given equivalent
// plans; plan 0 starts active.
func NewMovementContract(id, p1, p2 string, plans []MovementPlan) (*MovementContract, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("medusa: movement contract %s needs at least one plan", id)
	}
	for i := range plans {
		if plans[i].Contract == nil {
			return nil, fmt.Errorf("medusa: plan %d missing content contract", i)
		}
		if err := plans[i].Contract.Validate(); err != nil {
			return nil, err
		}
		plans[i].Contract.Active = false
	}
	m := &MovementContract{ID: id, P1: p1, P2: p2, plans: plans}
	m.plans[0].Contract.Active = true
	return m, nil
}

// Active returns the currently active plan.
func (m *MovementContract) Active() MovementPlan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plans[m.active]
}

// Plans returns a copy of all plans.
func (m *MovementContract) Plans() []MovementPlan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MovementPlan(nil), m.plans...)
}

// Switch activates the named plan — the step the two oracles take when
// both agree a substitution is preferable. It fails on cancelled
// contracts or unknown plans.
func (m *MovementContract) Switch(plan string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cancelled {
		return fmt.Errorf("medusa: movement contract %s is cancelled", m.ID)
	}
	for i := range m.plans {
		if m.plans[i].Name == plan {
			if i == m.active {
				return nil
			}
			m.plans[m.active].Contract.Active = false
			m.active = i
			m.plans[i].Contract.Active = true
			m.switches++
			return nil
		}
	}
	return fmt.Errorf("medusa: movement contract %s has no plan %q", m.ID, plan)
}

// Cancel voids the movement contract; cooperation reverts to whatever
// content contract is in place (the active plan's contract stays active).
func (m *MovementContract) Cancel() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cancelled = true
}

// Cancelled reports whether the contract has been cancelled.
func (m *MovementContract) Cancelled() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cancelled
}

// Switches counts how many plan substitutions have occurred.
func (m *MovementContract) Switches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.switches
}
