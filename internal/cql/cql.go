// Package cql implements the declarative front end §2.2 sketches as an
// alternative to the box-and-arrow GUI: "It would also be possible to
// allow users to specify declarative queries in a language such as SQL
// (modified to specify continuous queries), and then compile these queries
// into our box and arrow representation."
//
// The language is a deliberately small continuous-query dialect:
//
//	SELECT *                      FROM readings WHERE reading > 25
//	SELECT sensor, reading        FROM readings WHERE region == "cambridge"
//	SELECT cnt(reading)           FROM readings GROUP BY sensor
//	SELECT avg(price) FROM quotes WHERE sym == "IBM" GROUP BY sym
//
// WHERE expressions use the operator expression syntax (op.Parse), so a
// compiled query's predicates serialize and remote-define like any other.
// Compilation produces a Filter (WHERE), then a Map (projection) or a
// Tumble (aggregation with GROUP BY), bound to input "FROM-name" and
// output "out".
package cql

import (
	"fmt"
	"strings"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// Compile parses one declarative query and builds the equivalent query
// network over the given input schema.
func Compile(name, src string, schema *stream.Schema) (*query.Network, error) {
	q, err := parse(src)
	if err != nil {
		return nil, fmt.Errorf("cql: %w", err)
	}
	b := query.NewBuilder(name)
	input := q.from
	head := "" // id of the most recently added box

	if q.where != "" {
		// Validate eagerly for a friendlier error position.
		if _, err := op.Parse(q.where); err != nil {
			return nil, fmt.Errorf("cql: WHERE: %w", err)
		}
		b.AddBox("where", op.Spec{Kind: op.KindFilter,
			Params: map[string]string{"predicate": q.where}})
		b.BindInput(input, schema, "where", 0)
		head = "where"
	}

	attach := func(id string, spec op.Spec) {
		b.AddBox(id, spec)
		if head == "" {
			b.BindInput(input, schema, id, 0)
		} else {
			b.Connect(head, id)
		}
		head = id
	}

	switch {
	case q.agg != "":
		if len(q.groupBy) == 0 {
			return nil, fmt.Errorf("cql: aggregate %s(%s) requires GROUP BY (windows are per group, §2.2)", q.agg, q.aggOn)
		}
		if _, err := op.LookupAggregate(q.agg); err != nil {
			return nil, fmt.Errorf("cql: %w", err)
		}
		attach("agg", op.Spec{Kind: op.KindTumble, Params: map[string]string{
			"agg":     q.agg,
			"on":      q.aggOn,
			"groupby": strings.Join(q.groupBy, ","),
		}})
	case len(q.cols) > 0:
		items := make([]string, len(q.cols))
		for i, c := range q.cols {
			items[i] = c + "=" + c
		}
		attach("project", op.Spec{Kind: op.KindMap,
			Params: map[string]string{"exprs": strings.Join(items, "; ")}})
	default: // SELECT *
		if head == "" {
			attach("pass", op.Spec{Kind: op.KindFilter,
				Params: map[string]string{"predicate": "true"}})
		}
	}

	b.BindOutput("out", head, 0, nil)
	return b.Build()
}

// parsed is the AST of one query.
type parsed struct {
	cols    []string // projection columns; empty with star or agg
	star    bool
	agg     string
	aggOn   string
	from    string
	where   string // raw expression text for op.Parse
	groupBy []string
}

// parse splits the query into clauses. Keywords are case-insensitive;
// identifiers and expressions are case-sensitive.
func parse(src string) (*parsed, error) {
	toks := tokenize(src)
	p := &parsed{}
	i := 0
	expect := func(kw string) error {
		if i >= len(toks) || !strings.EqualFold(toks[i], kw) {
			return fmt.Errorf("expected %s at %q", kw, strings.Join(toks[i:], " "))
		}
		i++
		return nil
	}
	if err := expect("SELECT"); err != nil {
		return nil, err
	}
	// Selection list runs until FROM.
	var sel []string
	for i < len(toks) && !strings.EqualFold(toks[i], "FROM") {
		sel = append(sel, toks[i])
		i++
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("empty selection list")
	}
	if err := expect("FROM"); err != nil {
		return nil, err
	}
	if i >= len(toks) {
		return nil, fmt.Errorf("missing stream name after FROM")
	}
	p.from = toks[i]
	i++

	// Optional WHERE: everything until GROUP or end is the predicate.
	if i < len(toks) && strings.EqualFold(toks[i], "WHERE") {
		i++
		start := i
		for i < len(toks) && !strings.EqualFold(toks[i], "GROUP") {
			i++
		}
		p.where = strings.Join(toks[start:i], " ")
		if p.where == "" {
			return nil, fmt.Errorf("empty WHERE clause")
		}
	}
	// Optional GROUP BY col[, col]: a comma-separated identifier list.
	if i < len(toks) && strings.EqualFold(toks[i], "GROUP") {
		i++
		if err := expect("BY"); err != nil {
			return nil, err
		}
		joined := strings.Join(toks[i:], " ")
		i = len(toks)
		if joined == "" {
			return nil, fmt.Errorf("empty GROUP BY")
		}
		for _, part := range strings.Split(joined, ",") {
			col := strings.TrimSpace(part)
			if col == "" || strings.ContainsAny(col, " \t()") {
				return nil, fmt.Errorf("GROUP BY wants comma-separated columns, got %q", part)
			}
			p.groupBy = append(p.groupBy, col)
		}
	}
	if i < len(toks) {
		return nil, fmt.Errorf("trailing input %q", strings.Join(toks[i:], " "))
	}

	// Interpret the selection list.
	joined := strings.Join(sel, " ")
	switch {
	case joined == "*":
		p.star = true
		if len(p.groupBy) > 0 {
			return nil, fmt.Errorf("GROUP BY requires an aggregate selection, not *")
		}
	case isAggCall(joined):
		open := strings.IndexByte(joined, '(')
		clos := strings.LastIndexByte(joined, ')')
		p.agg = strings.TrimSpace(joined[:open])
		p.aggOn = strings.TrimSpace(joined[open+1 : clos])
		if p.aggOn == "" {
			return nil, fmt.Errorf("aggregate %s needs a column", p.agg)
		}
	default:
		for _, c := range strings.Split(joined, ",") {
			c = strings.TrimSpace(c)
			if c == "" {
				return nil, fmt.Errorf("empty projection column in %q", joined)
			}
			p.cols = append(p.cols, c)
		}
	}
	return p, nil
}

// isAggCall reports whether the selection looks like name(col).
func isAggCall(s string) bool {
	open := strings.IndexByte(s, '(')
	return open > 0 && strings.HasSuffix(s, ")") && !strings.Contains(s[:open], ",")
}

// tokenize splits on whitespace but keeps parenthesized and quoted runs
// intact enough for clause splitting (expressions are re-joined and handed
// to op.Parse verbatim).
func tokenize(src string) []string {
	return strings.Fields(src)
}
