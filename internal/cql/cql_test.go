package cql

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/stream"
)

var readings = stream.MustSchema("readings",
	stream.Field{Name: "sensor", Kind: stream.KindInt},
	stream.Field{Name: "reading", Kind: stream.KindFloat},
	stream.Field{Name: "region", Kind: stream.KindString},
)

// run compiles and executes a query over fixed tuples, returning the
// output tuples.
func run(t *testing.T, src string, in []stream.Tuple) []stream.Tuple {
	t.Helper()
	net, err := Compile("q", src, readings)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	e, err := engine.New(net, engine.Config{Clock: engine.NewVirtualClock(1)})
	if err != nil {
		t.Fatal(err)
	}
	var out []stream.Tuple
	e.OnOutput(func(_ string, tp stream.Tuple) { out = append(out, tp) })
	for _, tp := range in {
		e.Ingest("readings", tp.Clone())
	}
	e.Drain()
	return out
}

func sample() []stream.Tuple {
	mk := func(s int64, r float64, reg string) stream.Tuple {
		return stream.NewTuple(stream.Int(s), stream.Float(r), stream.String(reg))
	}
	return []stream.Tuple{
		mk(1, 10, "cambridge"),
		mk(1, 30, "cambridge"),
		mk(2, 40, "boston"),
		mk(2, 50, "boston"),
		mk(3, 5, "cambridge"),
	}
}

func TestSelectStarWhere(t *testing.T) {
	out := run(t, `SELECT * FROM readings WHERE reading > 25.0`, sample())
	if len(out) != 3 {
		t.Fatalf("got %d tuples:\n%s", len(out), stream.FormatTuples(out))
	}
	for _, tp := range out {
		if tp.Field(1).AsFloat() <= 25 {
			t.Errorf("WHERE leaked %v", tp)
		}
	}
}

func TestSelectStarNoWhere(t *testing.T) {
	out := run(t, `SELECT * FROM readings`, sample())
	if len(out) != 5 {
		t.Fatalf("passthrough lost tuples: %d", len(out))
	}
}

func TestProjection(t *testing.T) {
	out := run(t, `SELECT sensor, region FROM readings`, sample())
	if len(out) != 5 || len(out[0].Vals) != 2 {
		t.Fatalf("projection shape wrong:\n%s", stream.FormatTuples(out))
	}
	if out[0].Field(1).AsString() != "cambridge" {
		t.Errorf("projected values wrong: %v", out[0])
	}
}

func TestAggregateGroupBy(t *testing.T) {
	out := run(t, `SELECT cnt(reading) FROM readings GROUP BY sensor`, sample())
	// Runs: sensor 1 (2), sensor 2 (2), sensor 3 (1).
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(2)),
		stream.NewTuple(stream.Int(2), stream.Int(2)),
		stream.NewTuple(stream.Int(3), stream.Int(1)),
	}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%s", stream.FormatTuples(out))
	}
}

func TestWhereThenAggregate(t *testing.T) {
	out := run(t, `SELECT avg(reading) FROM readings WHERE region == "cambridge" GROUP BY sensor`, sample())
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Float(20)),
		stream.NewTuple(stream.Int(3), stream.Float(5)),
	}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%s", stream.FormatTuples(out))
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	out := run(t, `SELECT cnt(reading) FROM readings GROUP BY sensor, region`, sample())
	if len(out) != 3 {
		t.Fatalf("got %d windows:\n%s", len(out), stream.FormatTuples(out))
	}
	if len(out[0].Vals) != 3 { // sensor, region, result
		t.Errorf("group-by columns missing: %v", out[0])
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	if _, err := Compile("q", `select * from readings where reading > 1.0`, readings); err != nil {
		t.Errorf("lowercase keywords rejected: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`FROM readings`,
		`SELECT * readings`,
		`SELECT * FROM readings WHERE`,
		`SELECT * FROM readings WHERE ((`,
		`SELECT * FROM readings GROUP sensor`,
		`SELECT * FROM readings GROUP BY`,
		`SELECT cnt(reading) FROM readings`, // agg needs GROUP BY
		`SELECT warp(reading) FROM readings GROUP BY sensor`, // unknown agg
		`SELECT cnt() FROM readings GROUP BY sensor`,
		`SELECT ghost FROM readings`,
		`SELECT * FROM readings WHERE ghost > 1`,
		`SELECT * FROM readings GROUP BY sensor extra junk here FROM`,
	}
	for _, src := range bad {
		if _, err := Compile("q", src, readings); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestCompiledPredicatesSerialize(t *testing.T) {
	net, err := Compile("q", `SELECT * FROM readings WHERE reading > 25.0`, readings)
	if err != nil {
		t.Fatal(err)
	}
	spec := net.Box("where").Spec
	if !strings.Contains(spec.Params["predicate"], "reading") {
		t.Errorf("predicate not preserved: %v", spec)
	}
}
