// Package dsps is a Go reproduction of "Scalable Distributed Stream
// Processing" (Cherniack et al., CIDR 2003): the Aurora single-node
// stream processor, the Aurora* intra-participant distribution layer, and
// the Medusa federated operation layer, together with the substrates they
// depend on (overlay network simulation, multiplexed transport, DHT
// catalogs, QoS model, k-safe high availability, and load management by
// box sliding and splitting).
//
// This package is the public facade: it re-exports the stable surface of
// the internal packages so applications never import repro/internal/...
// directly. The deliberately small vocabulary mirrors the paper:
//
//   - Tuples and Schemas (§2.1) — the stream data model.
//   - Query networks (§2.2) — loop-free graphs of operator boxes built
//     with NewQuery and the *Spec constructors.
//   - Engine (§2.3) — the single-node Aurora runtime with train
//     scheduling, a storage manager, QoS monitoring, and load shedding.
//   - Cluster (§3.1) — Aurora*: a query network partitioned across
//     simulated servers with load sharing and k-safe failover.
//   - Participants, contracts, and markets (§3.2, §7.2) — Medusa.
//
// See the examples directory for runnable programs and EXPERIMENTS.md for
// the reproduction of every figure in the paper.
package dsps

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/loadmgr"
	"repro/internal/medusa"
	"repro/internal/netsim"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wgen"
)

// Data model (§2.1).
type (
	// Tuple is one stream event.
	Tuple = stream.Tuple
	// Value is one typed field of a tuple.
	Value = stream.Value
	// Schema describes the shape of a stream's tuples.
	Schema = stream.Schema
	// Field is one named, typed column of a schema.
	Field = stream.Field
	// Kind enumerates field types.
	Kind = stream.Kind
)

// Field kinds.
const (
	KindInt    = stream.KindInt
	KindFloat  = stream.KindFloat
	KindString = stream.KindString
	KindBool   = stream.KindBool
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = stream.Int
	// Float builds a float value.
	Float = stream.Float
	// Str builds a string value.
	Str = stream.String
	// Bool builds a boolean value.
	Bool = stream.Bool
	// NewTuple builds a tuple from values.
	NewTuple = stream.NewTuple
	// NewSchema builds a schema; MustSchema panics on error.
	NewSchema  = stream.NewSchema
	MustSchema = stream.MustSchema
)

// Query model (§2.2).
type (
	// QueryBuilder assembles a query network.
	QueryBuilder = query.Builder
	// Network is a validated query network.
	Network = query.Network
	// Port addresses one port of one box.
	Port = query.Port
	// OpSpec is a serializable operator description.
	OpSpec = op.Spec
	// Expr is a serializable expression (filter predicates, map columns).
	Expr = op.Expr
	// Aggregate is a windowed aggregate function with §5.1 combine
	// metadata.
	Aggregate = op.Aggregate
)

// NewQuery starts a query-network description.
func NewQuery(name string) *QueryBuilder { return query.NewBuilder(name) }

// CompileQuery compiles the small declarative continuous-query dialect of
// §2.2 ("SELECT cnt(reading) FROM readings WHERE region == \"cambridge\"
// GROUP BY sensor") into a box-and-arrow network with input FROM-name and
// output "out".
var CompileQuery = cql.Compile

// Selectivity carries per-box selectivity estimates for Optimize.
type Selectivity = query.Selectivity

// Optimize applies the §2.3 re-optimization rewrites (filter pushdown
// through unions, selectivity-ordered filter chains) and returns the
// rewritten network.
var Optimize = query.Optimize

// ParseExpr parses the expression syntax ("(price > 100) && (sym == \"IBM\")").
var ParseExpr = op.Parse

// MustParseExpr is ParseExpr that panics on error.
var MustParseExpr = op.MustParse

// Built-in aggregates (§2.2, §5.1).
var (
	Cnt   = op.Cnt
	Sum   = op.Sum
	Avg   = op.Avg
	Max   = op.Max
	Min   = op.Min
	First = op.First
	Last  = op.Last
)

// FilterSpec builds a Filter box: tuples satisfying pred pass; with
// falsePort a second output carries the rest.
func FilterSpec(pred string, falsePort bool) OpSpec {
	params := map[string]string{"predicate": pred}
	if falsePort {
		params["falseport"] = "true"
	}
	return OpSpec{Kind: "filter", Params: params}
}

// MapSpec builds a Map box from "name=expr; name=expr" projections.
func MapSpec(exprs string) OpSpec {
	return OpSpec{Kind: "map", Params: map[string]string{"exprs": exprs}}
}

// UnionSpec builds an n-input Union box.
func UnionSpec(inputs int) OpSpec {
	return OpSpec{Kind: "union", Params: map[string]string{"inputs": itoa(inputs)}}
}

// WSortSpec builds a time-bounded windowed sort over the given attributes.
func WSortSpec(attrs string, timeout int64) OpSpec {
	return OpSpec{Kind: "wsort", Params: map[string]string{
		"attrs": attrs, "timeout": itoa64(timeout)}}
}

// TumbleSpec builds a Tumble windowed aggregate: agg over the on
// expression, grouped by the comma-separated groupBy attributes.
func TumbleSpec(agg, on, groupBy string) OpSpec {
	return OpSpec{Kind: "tumble", Params: map[string]string{
		"agg": agg, "on": on, "groupby": groupBy}}
}

// XSectionSpec builds an XSection count-window aggregate.
func XSectionSpec(agg, on, groupBy string, size, advance int) OpSpec {
	return OpSpec{Kind: "xsection", Params: map[string]string{
		"agg": agg, "on": on, "groupby": groupBy,
		"size": itoa(size), "advance": itoa(advance)}}
}

// SlideSpec builds a Slide trailing-window aggregate.
func SlideSpec(agg, on, groupBy, order string, width float64) OpSpec {
	return OpSpec{Kind: "slide", Params: map[string]string{
		"agg": agg, "on": on, "groupby": groupBy,
		"order": order, "range": ftoa(width)}}
}

// JoinSpec builds a windowed symmetric join on key equality.
func JoinSpec(leftKey, rightKey string, window int64) OpSpec {
	return OpSpec{Kind: "join", Params: map[string]string{
		"leftkey": leftKey, "rightkey": rightKey, "window": itoa64(window)}}
}

// ResampleSpec builds a Resample interpolation of the named reference field.
func ResampleSpec(on string) OpSpec {
	return OpSpec{Kind: "resample", Params: map[string]string{"on": on}}
}

// QoS model (§7.1).
type (
	// QoS is an application's quality-of-service specification.
	QoS = qos.Spec
	// QoSGraph is one piecewise-linear utility graph.
	QoSGraph = qos.Graph
	// QoSPoint is one graph vertex.
	QoSPoint = qos.Point
	// BoxCost carries the statistics QoS inference consumes.
	BoxCost = qos.BoxCost
)

var (
	// NewQoSGraph builds a utility graph from vertices.
	NewQoSGraph = qos.NewGraph
	// LatencyQoS builds the canonical latency graph: full utility up to
	// good, zero at deadline.
	LatencyQoS = qos.DefaultLatency
	// LossQoS builds the canonical loss-tolerance graph.
	LossQoS = qos.DefaultLoss
	// InferQoS pushes an output QoS upstream through a box chain (Fig 9).
	InferQoS = qos.InferChain
)

// Engine (§2.3).
type (
	// Engine is the single-node Aurora runtime.
	Engine = engine.Engine
	// EngineConfig tunes an engine.
	EngineConfig = engine.Config
	// VirtualClock drives deterministic experiments.
	VirtualClock = engine.VirtualClock
	// ShedConfig configures the load shedder.
	ShedConfig = engine.ShedConfig
	// SLOConfig enables and tunes the latency-SLO plane.
	SLOConfig = engine.SLOConfig
	// OutputReport summarizes an output's observed QoS.
	OutputReport = engine.OutputReport
	// Attribution decomposes an output's tail latency per contributor.
	Attribution = engine.Attribution
	// BoxShare is one contributor's slice of attributed tail latency.
	BoxShare = engine.BoxShare
)

// Shedding policies.
const (
	ShedRandom = engine.ShedRandom
	ShedQoS    = engine.ShedQoS
)

// Observability: causal tracing and the flight recorder.
type (
	// Tracer samples tuples for tracing and records completed spans.
	Tracer = trace.Tracer
	// Span decomposes one tuple's latency into queue/proc/net.
	Span = trace.Span
	// FlightRecorder is the fixed-size ring of recent trace events.
	FlightRecorder = trace.Recorder
	// TraceEvent is one flight-recorder entry.
	TraceEvent = trace.Event
)

var (
	// NewTracer builds a tracer sampling every'th tuple into rec.
	NewTracer = trace.NewTracer
	// NewFlightRecorder builds a ring retaining the last n events.
	NewFlightRecorder = trace.NewRecorder
	// ChromeTrace renders events as Chrome trace-event JSON (Perfetto).
	ChromeTrace = trace.ChromeTrace
)

// Observability: the structured event journal — every control-plane
// decision (split, shed, offload, link transition, HA replay) as a typed,
// correlation-chained record in a fixed-memory ring.
type (
	// EventJournal is the fixed-memory ring of control-plane events.
	EventJournal = events.Journal
	// ClusterEvent is one journaled control-plane decision.
	ClusterEvent = events.Event
	// EventKind classifies a journaled event.
	EventKind = events.Kind
)

var (
	// NewEventJournal builds a journal retaining the last n events.
	NewEventJournal = events.NewJournal
	// MergeEvents time-sorts several journals into one cluster history.
	MergeEvents = events.Merge
	// FormatEvents renders events as readable dump lines.
	FormatEvents = events.Format
)

// Event kinds.
const (
	EventSplit         = events.KindSplit
	EventUnsplit       = events.KindUnsplit
	EventHotBox        = events.KindHotBox
	EventCoolBox       = events.KindCoolBox
	EventOffload       = events.KindOffload
	EventShedEngage    = events.KindShedEngage
	EventShedDisengage = events.KindShedDisengage
	EventLinkState     = events.KindLinkState
	EventHAReplay      = events.KindHAReplay
	EventFault         = events.KindFault
	EventSLOWarn       = events.KindSLOWarn
	EventBottleneck    = events.KindBottleneck
)

// Latency-SLO plane: mergeable quantile sketches (DESIGN §13).
type (
	// LatencySketch is the fixed-memory mergeable quantile sketch every
	// delivered tuple's latency feeds.
	LatencySketch = sketch.Sketch
)

var (
	// NewLatencySketch builds a sketch with relative-error alpha.
	NewLatencySketch = sketch.New
	// DecodeLatencySketch decodes a gossiped sketch encoding.
	DecodeLatencySketch = sketch.DecodeSketch
)

// SketchDefaultAlpha is the default sketch relative-error bound (1%).
const SketchDefaultAlpha = sketch.DefaultAlpha

// Statistics plane: windowed series and the gossiped load map (§7.1).
type (
	// StatsStore is the fixed-memory windowed time-series store.
	StatsStore = stats.Store
	// StatsPlane bundles a node's store, digest publisher, and load map.
	StatsPlane = stats.Plane
	// StatsDigest is one node's compact gossiped load summary.
	StatsDigest = stats.Digest
	// StatsExport is one exported series with its windowed points.
	StatsExport = stats.SeriesExport
	// LoadMap is a node's converged view of cluster load.
	LoadMap = stats.LoadMap
)

var (
	// NewStatsStore builds a windowed store (window length, ring size).
	NewStatsStore = stats.NewStore
	// NewStatsPlane builds a node's statistics plane.
	NewStatsPlane = stats.NewPlane
	// NewLoadMap builds an empty load map for a node.
	NewLoadMap = stats.NewLoadMap
	// OffloadFromMap plans a box offload from windowed load (§7.1).
	OffloadFromMap = loadmgr.OffloadFromMap
)

var (
	// NewEngine instantiates a network on one node.
	NewEngine = engine.New
	// NewVirtualClock returns a deterministic clock.
	NewVirtualClock = engine.NewVirtualClock
	// Drive offers tuples at a fixed rate under a virtual clock.
	Drive = engine.Drive
	// NewTrainScheduler, NewRoundRobinScheduler, NewQoSScheduler build
	// the scheduling disciplines of §2.3.
	NewTrainScheduler      = engine.NewTrainScheduler
	NewRoundRobinScheduler = engine.NewRoundRobinScheduler
	NewQoSScheduler        = engine.NewQoSScheduler
)

// Distribution (§3.1, §5, §6).
type (
	// Cluster is the Aurora* distributed processor.
	Cluster = core.Cluster
	// ClusterConfig tunes a cluster.
	ClusterConfig = core.Config
	// Sim is the overlay-network simulator clusters run on.
	Sim = netsim.Sim
	// SharePolicy tunes the load-share daemons.
	SharePolicy = loadmgr.Policy
	// SplitInfo names the boxes a split introduced.
	SplitInfo = loadmgr.SplitInfo
)

var (
	// NewSim creates an overlay simulator.
	NewSim = netsim.New
	// NewCluster partitions a network over simulated servers.
	NewCluster = core.NewCluster
	// SplitBox rewrites a network, splitting one box with the given
	// router predicate (§5.1, Figs 5-7).
	SplitBox = loadmgr.Split
	// HashHalfPredicate routes a deterministic half of the key space.
	HashHalfPredicate = loadmgr.HashHalf
	// DefaultSharePolicy is a reasonable watermark policy.
	DefaultSharePolicy = loadmgr.DefaultPolicy
)

// Federation (§3.2, §7.2).
type (
	// Participant is one Medusa administrative domain.
	Participant = medusa.Participant
	// Offer is a stream a participant sells.
	Offer = medusa.Offer
	// ContentContract pays for a stream (§7.2).
	ContentContract = medusa.ContentContract
	// MovementContract holds alternate distributed plans.
	MovementContract = medusa.MovementContract
	// Market simulates the agoric economy.
	Market = medusa.Market
	// MarketStage is one pipeline step with work and value-add.
	MarketStage = medusa.Stage
	// MarketEcon is a participant's capacity and costs.
	MarketEcon = medusa.Econ
)

var (
	// NewParticipant creates a participant with an account and catalog.
	NewParticipant = medusa.NewParticipant
	// RemoteDefine instantiates an operator at another participant (§4.4).
	RemoteDefine = medusa.RemoteDefine
	// NewMarket builds the §7.2 economy over a participant chain.
	NewMarket = medusa.NewMarket
)

// Transport: self-healing multiplexed TCP peer links (§4.3, §6).
type (
	// Transport is the multiplexed TCP endpoint: one supervised
	// connection per peer with WFQ scheduling across streams.
	Transport = transport.TCP
	// TransportMsg is one framed message on a peer connection.
	TransportMsg = transport.Msg
	// TransportHandler receives inbound messages.
	TransportHandler = transport.Handler
	// LinkConfig tunes handshake/write deadlines, keepalives, reconnect
	// backoff, and the bounded outbound buffer of a supervised link.
	LinkConfig = transport.LinkConfig
	// LinkState is a supervised link's lifecycle state.
	LinkState = transport.LinkState
	// LinkInfo is one link's observable state and counters, as served
	// by the /links telemetry endpoint.
	LinkInfo = transport.LinkInfo
)

// Link lifecycle states: connecting → established ⇄ degraded → down.
const (
	LinkConnecting  = transport.LinkConnecting
	LinkEstablished = transport.LinkEstablished
	LinkDegraded    = transport.LinkDegraded
	LinkDown        = transport.LinkDown
)

var (
	// ListenTCP binds a transport endpoint; AddPeer then supervises
	// links with reconnect and replay-on-reconnect hooks.
	ListenTCP = transport.ListenTCP
)

// Workload generation.
type (
	// Source produces tuples with inter-arrival gaps.
	Source = wgen.Source
	// Arrival models an inter-arrival process.
	Arrival = wgen.Arrival
)

var (
	// NewPoissonArrival, NewOnOffArrival, NewParetoArrival, and
	// NewConstantArrival build arrival processes.
	NewPoissonArrival  = wgen.NewPoissonArrival
	NewOnOffArrival    = wgen.NewOnOffArrival
	NewParetoArrival   = wgen.NewParetoArrival
	NewConstantArrival = wgen.NewConstantArrival
	// NewSensorSource, NewStockSource, and NewNetFlowSource build the
	// synthetic workloads of the examples and experiments.
	NewSensorSource  = wgen.NewSensorSource
	NewStockSource   = wgen.NewStockSource
	NewNetFlowSource = wgen.NewNetFlowSource
	// SensorSchema, QuoteSchema, and FlowSchema are their schemas.
	SensorSchema = wgen.SensorSchema
	QuoteSchema  = wgen.QuoteSchema
	FlowSchema   = wgen.FlowSchema
	// CollectSource drains up to n tuples from a source.
	CollectSource = wgen.Collect
)

func itoa(v int) string { return strconv.Itoa(v) }

func itoa64(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
