#!/bin/sh
# CI gate: everything must pass before a change lands.
set -eu

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

echo "ci: all checks passed"
