#!/bin/sh
# CI gate: everything must pass before a change lands.
set -eu

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

echo "== trace overhead guard"
# Tracing disabled must stay a few predictable branches on the hot path:
# the guard benchmarks the engine with tracing off vs. sampled-on and
# fails if the off path pays for the instrumentation.
CI_TRACE_GUARD=1 go test ./internal/engine/ -run TestTraceOverheadGuard -count=1 -v

echo "== stats overhead guard"
# Same bargain for the statistics plane: with no stats store configured
# the engine hot path must not pay for the windowed sampling.
CI_STATS_GUARD=1 go test ./internal/engine/ -run TestStatsOverheadGuard -count=1 -v

echo "ci: all checks passed"
