#!/bin/sh
# CI gate: everything must pass before a change lands.
set -eu

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

echo "== trace overhead guard"
# Tracing disabled must stay a few predictable branches on the hot path:
# the guard benchmarks the engine with tracing off vs. sampled-on and
# fails if the off path pays for the instrumentation.
CI_TRACE_GUARD=1 go test ./internal/engine/ -run TestTraceOverheadGuard -count=1 -v

echo "== stats overhead guard"
# Same bargain for the statistics plane: with no stats store configured
# the engine hot path must not pay for the windowed sampling.
CI_STATS_GUARD=1 go test ./internal/engine/ -run TestStatsOverheadGuard -count=1 -v

echo "== parallel engine"
# The worker-pool path under the race detector: config validation,
# serial-vs-parallel output equivalence, concurrent ingest, and trace
# worker attribution.
go test -race ./internal/engine/ -run 'Parallel' -count=1 -timeout 120s

echo "== parallel speedup guard"
# Four workers must beat serial by >= 1.5x on conflict-free chains. The
# test skips itself on hosts with fewer than four CPUs, where the
# comparison would measure nothing but context switching.
CI_PARALLEL_GUARD=1 go test ./internal/engine/ -run TestParallelSpeedupGuard -count=1 -v

echo "== split equivalence battery"
# The §5.1 split contract under the race detector: the op-level
# quick-check property battery (merge(combine, split_k(input)) equals the
# unsplit operator over seeded random trains), the engine-level serial vs
# split-N equivalence tests, the replica scheduler/dispatcher pins, and
# the randomized split/unsplit churn storm.
go test -race ./internal/op/ -run 'TestQuickSplit|TestSplitProfile' -count=1 -timeout 120s
go test -race ./internal/engine/ -run 'Split' -count=1 -timeout 180s

echo "== autosplit speedup guard"
# Four workers plus the autosplit controller must beat four workers alone
# by >= 2x on the Zipf hot-aggregate chain — a worker pool cannot
# parallelize a single hot box, only a key-sharded split can. The test
# skips itself below 4 CPUs.
CI_AUTOSPLIT_GUARD=1 go test ./internal/engine/ -run TestAutoSplitSpeedupGuard -count=1 -v

echo "== hot-path guard"
# The batched-kernel bargain, both halves. The deterministic half runs
# everywhere: a warm filter->map train must drain to the output with
# zero allocations per train (pooled train buffers, pooled emission
# buffers, pooled Vals), plus the kernel/codec zero-alloc pins. The
# speedup half needs CI_HOTPATH_GUARD and >= 4 CPUs: batched kernels
# must beat the SerialKernels per-tuple baseline by >= 1.8x on the E18
# chain shape, best of five alternating rounds.
go test ./internal/engine/ -run 'TestTrainPathZeroAlloc' -count=1 -v
go test ./internal/op/ -run 'TestKernelEquivalence|KernelZeroAlloc' -count=1
go test ./internal/transport/ -run 'TestDecodeInto|TestEncodeZeroAlloc' -count=1
CI_HOTPATH_GUARD=1 go test ./internal/engine/ -run TestHotPathSpeedupGuard -count=1 -v -timeout 300s

echo "== events overhead guard"
# The observability plane's bargain: with the event journal configured
# and delivered-QoS attribution active, the per-tuple path must stay
# within 5% of the disabled configuration (the batched hot path cut the
# disabled baseline, so the plane's unchanged ~10ns absolute cost is a
# larger fraction than when the fence was set at 3%).
CI_EVENTS_GUARD=1 go test ./internal/engine/ -run TestEventsOverheadGuard -count=1 -v

echo "== latency-SLO overhead guard"
# The latency-SLO plane's bargain: per-output DDSketch recording, tail
# attribution, and the per-window forecaster must keep the per-tuple
# path within 5% of the plane-disabled configuration (same re-basing as
# the events guard: faster disabled baseline, unchanged absolute cost).
CI_LATENCY_GUARD=1 go test ./internal/engine/ -run TestLatencyOverheadGuard -count=1 -v

echo "== kill-mid-split chaos"
# A fault schedule that crashes a node while its box runs split must
# still satisfy all four k-safety oracles, plus the split-overlay seed
# sweep.
go test ./internal/chaos/ -run 'Split' -count=1 -timeout 300s

echo "== durability"
# The durable-state plane end to end: segment-log framing (torn tails,
# CRC corruption, whole-segment truncation/eviction), checkpoint
# round-trips, CP spill recovery, the durable output-log commit point,
# and the kill/restart equivalence run under the race detector — a
# schedule with process restarts must converge to exactly the fault-free
# delivery set, rebuilt from segment files through the normal resync path.
go test ./internal/storage/ -count=1 -timeout 120s
go test -race ./internal/ha/ -run 'Durable|ResyncCorr' -count=1 -timeout 120s
go test -race ./internal/chaos/ -run 'Restart' -count=1 -timeout 300s

echo "== durability overhead guard"
# The spill-on-evict bargain: with a disk spill attached to every
# connection point but the history under its memory budget, the per-tuple
# path must stay within 5% of the memory-only configuration. Durability
# costs only when the alternative was dropping history.
CI_DURABILITY_GUARD=1 go test ./internal/engine/ -run TestDurabilityOverheadGuard -count=1 -v

echo "== transport churn guard"
# The reconnect/churn tests leak-check the transport's goroutines; run
# them twice back to back so a goroutine left behind by round one trips
# the guard in round two.
go test ./internal/transport/ -run 'TestTCP' -count=2 -timeout 120s

echo "== fuzz smoke"
# Ten seconds per decoder: enough to replay the corpus and mutate a bit,
# cheap enough to run on every change.
go test ./internal/transport/ -run '^$' -fuzz '^FuzzDecode$' -fuzztime 10s
go test ./internal/transport/ -run '^$' -fuzz '^FuzzDecodeTuple$' -fuzztime 10s
go test ./internal/stats/ -run '^$' -fuzz '^FuzzDecodeDigest$' -fuzztime 10s
go test ./internal/sketch/ -run '^$' -fuzz '^FuzzDecodeSketch$' -fuzztime 10s
go test ./internal/storage/ -run '^$' -fuzz '^FuzzDecodeSegment$' -fuzztime 10s

echo "ci: all checks passed"
