// Federation: Medusa's inter-participant operation (§3.2, §4.4, §7.2).
// A market-data participant sells a stock-quote stream; a consumer
// participant, instead of buying the whole stream and filtering locally,
// remotely defines a threshold Filter at the seller and receives only the
// customized content — the paper's own stock-quote example. Then an
// agoric market of three participants anneals an overloaded query
// pipeline to a stable, profitable allocation via movement contracts.
package main

import (
	"fmt"
	"log"

	dsps "repro"
)

func remoteDefinitionDemo() {
	seller := dsps.NewParticipant("marketdata.com")
	buyer := dsps.NewParticipant("hedgefund.org")

	// The seller offers the raw stream and authorizes the buyer to do
	// remote definitions.
	if err := seller.Offer(dsps.Offer{
		Stream: "quotes", Schema: dsps.QuoteSchema, PricePerMsg: 0.0001,
	}); err != nil {
		log.Fatal(err)
	}
	seller.Authorize(buyer.Name)

	// The buyer ships the textual operator spec; the seller instantiates
	// it from its own pre-defined operator set (§4.4).
	threshold := dsps.FilterSpec(`(sym == "S007") && (price > 100)`, false)
	if err := dsps.RemoteDefine(buyer.Name, seller, "hf-threshold", threshold); err != nil {
		log.Fatal(err)
	}
	fmt.Println("remote definition installed at", seller.Name)

	// Measure the customization win: the boundary now carries only the
	// tuples that satisfy the remotely defined filter.
	spec, _ := seller.RemoteDefinition("hf-threshold")
	net, err := dsps.NewQuery("export").
		AddBox("customize", spec).
		BindInput("quotes", dsps.QuoteSchema, "customize", 0).
		BindOutput("to-buyer", "customize", 0, nil).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dsps.NewEngine(net, dsps.EngineConfig{Clock: dsps.NewVirtualClock(1)})
	if err != nil {
		log.Fatal(err)
	}
	crossed := 0
	eng.OnOutput(func(string, dsps.Tuple) { crossed++ })
	src := dsps.NewStockSource(16, dsps.NewConstantArrival(1000), 50_000, 5)
	total := 0
	for {
		t, _, ok := src.Next()
		if !ok {
			break
		}
		total++
		eng.Ingest("quotes", t)
		eng.RunUntilIdle(0)
	}
	eng.Drain()
	fmt.Printf("boundary traffic: %d of %d quotes (%.2f%%) after remote definition\n\n",
		crossed, total, 100*float64(crossed)/float64(total))
}

func marketDemo() {
	// Three participants in a processing chain; all twelve stages of a
	// query initially run at participant A, far beyond its capacity.
	var parts []*dsps.Participant
	econ := map[string]dsps.MarketEcon{}
	for _, name := range []string{"A", "B", "C"} {
		p := dsps.NewParticipant(name)
		parts = append(parts, p)
		econ[name] = dsps.MarketEcon{Capacity: 100, CostPerWork: 0.001}
	}
	m, err := dsps.NewMarket(parts, econ)
	if err != nil {
		log.Fatal(err)
	}
	stages := make([]dsps.MarketStage, 12)
	for i := range stages {
		stages[i] = dsps.MarketStage{Name: fmt.Sprintf("op%d", i), Work: 1, ValueAdd: 0.01}
	}
	q, err := m.AddQuery("analytics", 0.01, stages, 20, []int{12, 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round  cuts        utilization (A, B, C)      switches")
	for i := 0; i < 30; i++ {
		rep := m.Round()
		fmt.Printf("%5d  %v  %.2f %.2f %.2f  %d\n",
			rep.Round, q.Cuts(),
			rep.Utilization["A"], rep.Utilization["B"], rep.Utilization["C"],
			rep.Switches)
		if rep.Switches == 0 && i > 0 {
			fmt.Println("\nthe economy annealed to a stable state (§7.2)")
			for _, p := range parts {
				fmt.Printf("  %s balance: $%.2f\n", p.Name, p.Account.Balance())
			}
			return
		}
	}
}

func main() {
	remoteDefinitionDemo()
	marketDemo()
}
