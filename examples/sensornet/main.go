// Sensornet: the paper's motivating workload (§1) under overload. A
// sensor-network monitoring query is offered twice its processing
// capacity; the run is repeated with no shedding, random shedding, and
// QoS-driven shedding, showing how the Load Shedder (Fig 3) trades
// precision for latency and why value-aware drops preserve more utility
// (§7.1: "precision is the wrong standard ... QoS specifications serve to
// define what is acceptable").
package main

import (
	"fmt"
	"log"
	"math/rand"

	dsps "repro"
)

const (
	nTuples = 40_000
	boxCost = 200_000 // ns per tuple of processing
	gap     = 100_000 // ns between arrivals: 2x overload
)

func buildNetwork() (*dsps.Network, error) {
	// QoS: value graph over the reading magnitude — big readings are the
	// anomalies the application cares about; loss floor at 40%.
	spec := &dsps.QoS{
		Latency:    dsps.LatencyQoS(50e6, 2e9),
		Loss:       dsps.LossQoS(0.2),
		Value:      mustGraph(dsps.QoSPoint{X: 0, U: 0}, dsps.QoSPoint{X: 3, U: 1}),
		ValueField: "reading",
	}
	return dsps.NewQuery("sensornet").
		AddBox("calib", dsps.MapSpec("sensor=sensor; reading=(reading * 1.0); region=region")).
		BindInput("sensors", dsps.SensorSchema, "calib", 0).
		BindOutput("monitored", "calib", 0, spec).
		Build()
}

func mustGraph(pts ...dsps.QoSPoint) *dsps.QoSGraph {
	g, err := dsps.NewQoSGraph(pts...)
	if err != nil {
		panic(err)
	}
	return g
}

func run(shed *dsps.ShedConfig, label string) {
	q, err := buildNetwork()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dsps.NewEngine(q, dsps.EngineConfig{
		Clock:          dsps.NewVirtualClock(1),
		DefaultBoxCost: boxCost,
		Shed:           shed,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng.OnOutput(func(string, dsps.Tuple) {})

	dsps.Drive(eng, "sensors", workload(), gap)
	eng.Drain()

	rep, _ := eng.Output("monitored")
	fmt.Printf("%-12s delivered %5.1f%%  p95 latency %6.1f ms  utility %.3f\n",
		label, 100*rep.DeliveredFraction, rep.Latency.P95/1e6, rep.Utility)
}

// workload materializes the sensor stream with each tuple's reading
// replaced by an independent exponential anomaly score — the value the
// application's QoS graph ranks (most readings are boring, a few matter).
func workload() []dsps.Tuple {
	src := dsps.NewSensorSource(64, 1.3, []string{"cambridge", "boston"},
		dsps.NewConstantArrival(1e9/float64(gap)), nTuples, 11)
	rng := rand.New(rand.NewSource(11))
	var out []dsps.Tuple
	for {
		t, _, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, dsps.NewTuple(
			t.Field(0), dsps.Float(rng.ExpFloat64()), t.Field(2)))
	}
}

func main() {
	fmt.Printf("offered load: 2.0x capacity, %d tuples\n\n", nTuples)
	run(nil, "no shedding")
	run(&dsps.ShedConfig{
		Mode: dsps.ShedRandom, QueueHigh: 500, QueueLow: 50, Seed: 1,
	}, "random")
	run(&dsps.ShedConfig{
		Mode: dsps.ShedQoS, QueueHigh: 500, QueueLow: 50, Seed: 1,
		ValueExpr:   "reading",
		ValueGraph:  mustGraph(dsps.QoSPoint{X: 0, U: 0}, dsps.QoSPoint{X: 3, U: 1}),
		InputSchema: "sensors",
	}, "qos-driven")
	fmt.Println("\nQoS-driven shedding drops the same volume but keeps the valuable tuples.")
}
