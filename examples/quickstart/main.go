// Quickstart: a single-node Aurora engine running a continuous query over
// a sensor stream (paper §2): filter hot readings, then count each
// sensor's consecutive hot runs with a Tumble window, with a latency QoS
// attached to the output.
package main

import (
	"fmt"
	"log"

	dsps "repro"
)

func main() {
	// 1. Declare the stream schema, as a data source would register it
	// in the catalog (§4.2).
	readings := dsps.MustSchema("readings",
		dsps.Field{Name: "sensor", Kind: dsps.KindInt},
		dsps.Field{Name: "reading", Kind: dsps.KindFloat},
		dsps.Field{Name: "region", Kind: dsps.KindString},
	)

	// 2. Build the query network: a Filter box feeding a Tumble box
	// (boxes and arrows, Fig 1), with a QoS specification on the output
	// (§7.1): full utility under 1ms, zero utility beyond 1s.
	q, err := dsps.NewQuery("hot-sensors").
		AddBox("hot", dsps.FilterSpec("reading > 25.0", false)).
		AddBox("runs", dsps.TumbleSpec("cnt", "reading", "sensor")).
		Connect("hot", "runs").
		BindInput("readings", readings, "hot", 0).
		BindOutput("alerts", "runs", 0, &dsps.QoS{
			Latency: dsps.LatencyQoS(1e6, 1e9),
		}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Instantiate the engine and attach the application: stream-based
	// applications are passive receivers of pushed results (§1).
	eng, err := dsps.NewEngine(q, dsps.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	eng.OnOutput(func(name string, t dsps.Tuple) {
		delivered++
		if delivered <= 5 {
			fmt.Printf("alert: sensor %d had %d consecutive hot readings\n",
				t.Field(0).AsInt(), t.Field(1).AsInt())
		}
	})

	// 4. Push a synthetic sensor workload through it.
	src := dsps.NewSensorSource(8, 1.2, []string{"cambridge", "boston"},
		dsps.NewPoissonArrival(50_000, 7), 20_000, 7)
	for {
		t, _, ok := src.Next()
		if !ok {
			break
		}
		// Lift the random-walk readings into alert range occasionally.
		v := t.Field(1).AsFloat() + 25
		eng.Ingest("readings", dsps.NewTuple(t.Field(0), dsps.Float(v), t.Field(2)))
		eng.RunUntilIdle(0)
	}
	eng.Drain()

	// 5. Read the QoS monitor (Fig 3).
	rep, _ := eng.Output("alerts")
	fmt.Printf("\ndelivered %d alerts, mean latency %.0f ns, utility %.3f\n",
		rep.Delivered, rep.Latency.Mean, rep.Utility)
	for _, st := range eng.AllStats() {
		fmt.Printf("box %-5s cost %.0f ns/tuple selectivity %.2f\n",
			st.ID, st.Cost, st.Selectivity)
	}
}
