// Failover: the Fig 8 scenario live. A three-server chain processes a
// stream with k=1 upstream backup; the middle server is crashed mid-run.
// The upstream server detects the silence (§6.3), adopts the failed
// server's query piece, replays its retained output queue, and the
// application observes zero message loss — only some duplicates, which is
// the guarantee k-safety makes (§6.2).
package main

import (
	"fmt"
	"log"

	dsps "repro"
)

func main() {
	sim := dsps.NewSim(1)

	flows := dsps.FlowSchema
	q, err := dsps.NewQuery("netmon").
		AddBox("prefilter", dsps.FilterSpec("bytes > 100", false)).
		AddBox("norm", dsps.MapSpec("src=src; dst=dst; kb=(bytes / 1024)")).
		AddBox("big", dsps.FilterSpec("kb >= 0", false)).
		Connect("prefilter", "norm").
		Connect("norm", "big").
		BindInput("flows", flows, "prefilter", 0).
		BindOutput("suspicious", "big", 0, nil).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := dsps.NewCluster(sim, q,
		map[string]string{"prefilter": "s1", "norm": "s2", "big": "s3"},
		nil,
		dsps.ClusterConfig{
			K:               1,
			DefaultBoxCost:  20_000,
			FlowPeriod:      2e6,
			HeartbeatPeriod: 1e6,
			DetectTimeout:   3e6,
		})
	if err != nil {
		log.Fatal(err)
	}
	for _, pair := range [][2]string{{"s1", "s2"}, {"s2", "s3"}, {"s1", "s3"}} {
		if err := sim.Connect(pair[0], pair[1], 0, 200_000, 0); err != nil {
			log.Fatal(err)
		}
	}
	cluster.Start()

	seen := map[uint64]int{}
	cluster.OnOutput(func(name string, t dsps.Tuple, at int64) {
		seen[uint64(t.Field(0).AsInt())]++
	})

	// Feed 5000 flows, one every 50us; crash s2 halfway through.
	const n = 5000
	src := dsps.NewNetFlowSource(256, dsps.NewConstantArrival(20_000), n, 3)
	sent := 0
	for i := 0; ; i++ {
		t, _, ok := src.Next()
		if !ok {
			break
		}
		// Overwrite src with a unique id so loss is countable end to end.
		t.Vals[0] = dsps.Int(int64(i))
		if t.Field(2).AsInt() <= 100 {
			t.Vals[2] = dsps.Int(101) // keep every tuple countable
		}
		id := i
		_ = id
		tt := t
		sim.Schedule(int64(i)*50_000, func() { cluster.Ingest("flows", tt) })
		sent++
	}
	crashAt := int64(n/2) * 50_000
	sim.Schedule(crashAt, func() {
		fmt.Printf("t=%.1fms: crashing server s2\n", float64(crashAt)/1e6)
		sim.Crash("s2")
	})
	sim.Run(3e9)

	missing, dups := 0, 0
	for i := 0; i < sent; i++ {
		switch c := seen[uint64(i)]; {
		case c == 0:
			missing++
		case c > 1:
			dups += c - 1
		}
	}
	for _, r := range cluster.Recoveries() {
		fmt.Printf("t=%.1fms: %s detected s2's failure; %s adopted its piece and replayed %d retained tuples\n",
			float64(r.DetectedAt)/1e6, r.Adopter, r.Adopter, r.Replayed)
	}
	fmt.Printf("\nsent %d, delivered %d unique, missing %d, duplicates %d\n",
		sent, sent-missing, missing, dups)
	if missing == 0 {
		fmt.Println("k=1 safety held: the failure of one server lost no messages.")
	} else {
		fmt.Println("LOSS DETECTED — k-safety violated")
	}
}
