// Adhoc: connection points and network re-optimization (§2.2, §2.3).
// A monitoring query runs with a connection point on its cleaned stream;
// later, an analyst attaches an ad hoc aggregate query at the connection
// point and receives the retained history before the live feed. Finally
// the §2.3 re-optimizer rewrites a union-then-filter network, pushing the
// selective filter toward the sources.
package main

import (
	"fmt"
	"log"

	dsps "repro"
)

func adhocDemo() {
	readings := dsps.SensorSchema

	// in -> clean =connection point=> threshold -> out
	q, err := dsps.NewQuery("monitor").
		AddBox("clean", dsps.FilterSpec("reading > -1000.0", false)).
		AddBox("threshold", dsps.FilterSpec("reading > 2.0", false)).
		ConnectPorts(dsps.Port{Box: "clean"}, dsps.Port{Box: "threshold"}, true).
		BindInput("sensors", readings, "clean", 0).
		BindOutput("alerts", "threshold", 0, nil).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dsps.NewEngine(q, dsps.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	eng.OnOutput(func(string, dsps.Tuple) {})

	// History accumulates at the connection point before anyone asks.
	src := dsps.NewSensorSource(16, 1.2, []string{"cambridge"}, dsps.NewConstantArrival(1e6), 5_000, 3)
	for {
		t, _, ok := src.Next()
		if !ok {
			break
		}
		eng.Ingest("sensors", t)
		eng.RunUntilIdle(0)
	}

	// The analyst arrives late and attaches an ad hoc per-sensor counter.
	adhocQ, err := dsps.NewQuery("adhoc-count").
		AddBox("per", dsps.TumbleSpec("cnt", "reading", "sensor")).
		BindInput("cp", readings, "per", 0).
		BindOutput("counts", "per", 0, nil).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	adhoc, err := dsps.NewEngine(adhocQ, dsps.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	windows := 0
	adhoc.OnOutput(func(_ string, t dsps.Tuple) { windows++ })

	cps := eng.ConnectionPoints()
	replayed, err := eng.AttachAdHoc(cps[0], func(t dsps.Tuple) {
		adhoc.Ingest("cp", t)
		adhoc.RunUntilIdle(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ad hoc query attached at %v: %d historical tuples replayed\n", cps[0], replayed)

	// Live tuples now reach both the standing and the ad hoc query.
	for i := 0; i < 1000; i++ {
		t, _, _ := src.Next()
		eng.Ingest("sensors", t)
		eng.RunUntilIdle(0)
	}
	adhoc.Drain()
	fmt.Printf("ad hoc query emitted %d windows over history + live feed\n\n", windows)
}

func optimizerDemo() {
	readings := dsps.SensorSchema
	q, err := dsps.NewQuery("wide").
		AddBox("merge", dsps.UnionSpec(2)).
		AddBox("coarse", dsps.FilterSpec("reading > 0.0", false)).
		AddBox("sharp", dsps.FilterSpec("reading > 3.0", false)).
		Connect("merge", "coarse").
		Connect("coarse", "sharp").
		BindInput("east", readings, "merge", 0).
		BindInput("west", readings, "merge", 1).
		BindOutput("out", "sharp", 0, nil).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	// Selectivities as the QoS monitor would have measured them.
	opt, stats, err := dsps.Optimize(q, dsps.Selectivity{"coarse": 0.5, "sharp": 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-optimizer: %d filters pushed through unions, %d reordered\n",
		stats.FiltersPushed, stats.FiltersReordered)
	fmt.Printf("before: %s\nafter:  %s\n", q, opt)
	fmt.Println("the selective filters now run once per branch, before the union —")
	fmt.Println("the structural form of sliding them toward the sources (Fig 4)")
}

func main() {
	adhocDemo()
	optimizerDemo()
}
