package dsps_test

import (
	"testing"
	"time"

	dsps "repro"
)

// TestPublicAPIQuickstart exercises the facade end to end: build a query,
// run it on a single engine, observe QoS.
func TestPublicAPIQuickstart(t *testing.T) {
	readings := dsps.MustSchema("readings",
		dsps.Field{Name: "sensor", Kind: dsps.KindInt},
		dsps.Field{Name: "reading", Kind: dsps.KindFloat},
	)
	q, err := dsps.NewQuery("hot").
		AddBox("hot", dsps.FilterSpec("reading > 20", false)).
		AddBox("per", dsps.TumbleSpec("cnt", "reading", "sensor")).
		Connect("hot", "per").
		BindInput("readings", readings, "hot", 0).
		BindOutput("alerts", "per", 0, &dsps.QoS{Latency: dsps.LatencyQoS(1e6, 1e9)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dsps.NewEngine(q, dsps.EngineConfig{Clock: dsps.NewVirtualClock(1)})
	if err != nil {
		t.Fatal(err)
	}
	var alerts []dsps.Tuple
	eng.OnOutput(func(name string, tp dsps.Tuple) { alerts = append(alerts, tp) })
	for i := 0; i < 10; i++ {
		eng.Ingest("readings", dsps.NewTuple(dsps.Int(int64(i%2)), dsps.Float(25)))
	}
	eng.Drain()
	if len(alerts) == 0 {
		t.Fatal("no alerts produced")
	}
	rep, ok := eng.Output("alerts")
	if !ok || rep.Delivered == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPublicAPISpecHelpers(t *testing.T) {
	s := dsps.MustSchema("s",
		dsps.Field{Name: "a", Kind: dsps.KindInt},
		dsps.Field{Name: "b", Kind: dsps.KindFloat},
		dsps.Field{Name: "ts", Kind: dsps.KindInt},
	)
	specs := []dsps.OpSpec{
		dsps.FilterSpec("a < 3", true),
		dsps.MapSpec("twice=(a * 2)"),
		dsps.UnionSpec(3),
		dsps.WSortSpec("a", 1000),
		dsps.TumbleSpec("sum", "b", "a"),
		dsps.XSectionSpec("max", "b", "a", 4, 2),
		dsps.SlideSpec("min", "b", "a", "ts", 10.5),
		dsps.JoinSpec("a", "a", 100),
		dsps.ResampleSpec("b"),
	}
	for _, spec := range specs {
		b := dsps.NewQuery("t").AddBox("x", spec)
		switch spec.Kind {
		case "union":
			b.BindInput("i0", s, "x", 0).BindInput("i1", s, "x", 1).BindInput("i2", s, "x", 2)
		case "join", "resample":
			b.BindInput("l", s, "x", 0).BindInput("r", s, "x", 1)
		default:
			b.BindInput("in", s, "x", 0)
		}
		if _, err := b.Build(); err != nil {
			t.Errorf("%s: %v", spec.Kind, err)
		}
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	src := dsps.NewSensorSource(10, 1.2, []string{"cambridge"}, dsps.NewPoissonArrival(1000, 1), 0, 42)
	tuples := dsps.CollectSource(src, 100)
	if len(tuples) != 100 || !dsps.SensorSchema.Compatible(dsps.SensorSchema) {
		t.Fatal("sensor workload broken")
	}
	if dsps.NewStockSource(4, dsps.NewConstantArrival(10), 0, 1).Schema() != dsps.QuoteSchema {
		t.Error("stock schema mismatch")
	}
}

func TestPublicAPIExprAndQoS(t *testing.T) {
	e, err := dsps.ParseExpr(`(reading > 20) && (sensor == 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if e.String() == "" {
		t.Error("expr should render")
	}
	g, err := dsps.NewQoSGraph(dsps.QoSPoint{X: 0, U: 1}, dsps.QoSPoint{X: 10, U: 0})
	if err != nil || g.Utility(5) != 0.5 {
		t.Error("graph API broken")
	}
	specs, err := dsps.InferQoS(&dsps.QoS{Latency: g}, []dsps.BoxCost{{ID: "b", Time: 2}})
	if err != nil || len(specs) != 1 {
		t.Error("inference API broken")
	}
}

func TestPublicAPICompileQuery(t *testing.T) {
	readings := dsps.MustSchema("readings",
		dsps.Field{Name: "sensor", Kind: dsps.KindInt},
		dsps.Field{Name: "reading", Kind: dsps.KindFloat},
	)
	net, err := dsps.CompileQuery("decl",
		`SELECT cnt(reading) FROM readings WHERE reading > 1.0 GROUP BY sensor`, readings)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dsps.NewEngine(net, dsps.EngineConfig{Clock: dsps.NewVirtualClock(1)})
	if err != nil {
		t.Fatal(err)
	}
	var out []dsps.Tuple
	eng.OnOutput(func(_ string, tp dsps.Tuple) { out = append(out, tp) })
	for i := 0; i < 6; i++ {
		eng.Ingest("readings", dsps.NewTuple(dsps.Int(int64(i/3)), dsps.Float(2)))
	}
	eng.Drain()
	if len(out) != 2 || out[0].Field(1).AsInt() != 3 {
		t.Fatalf("declarative query output:\n%v", out)
	}
}

func TestPublicAPITransportLinks(t *testing.T) {
	a, err := dsps.ListenTCP("a", "127.0.0.1:0", nil, dsps.LinkConfig{BufferLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := dsps.ListenTCP("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("b", b.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := a.LinkState("b"); ok && st == dsps.LinkEstablished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("link never established")
		}
		time.Sleep(2 * time.Millisecond)
	}
	infos := a.LinkInfos()
	if len(infos) != 1 || infos[0].Peer != "b" || !infos[0].Supervised {
		t.Fatalf("LinkInfos = %+v", infos)
	}
	var li dsps.LinkInfo = infos[0]
	if li.State != dsps.LinkEstablished.String() {
		t.Errorf("state = %q", li.State)
	}
}
