package dsps_test

// The benchmark harness of deliverable (d): one BenchmarkExpNN per
// experiment in EXPERIMENTS.md — each regenerates the corresponding
// figure of the paper at reduced scale per iteration (cmd/benchrunner
// prints the full-scale tables) — plus micro-benchmarks of the hot paths
// (operator evaluation, wire codec, WFQ, engine steady state).

import (
	"fmt"
	"testing"

	dsps "repro"
	"repro/internal/exp"
	"repro/internal/op"
	"repro/internal/stream"
	"repro/internal/transport"
)

// benchScale keeps one experiment iteration in the low milliseconds.
const benchScale = 0.05

func runExp(b *testing.B, id string) {
	b.Helper()
	for _, e := range exp.Registry() {
		if e.ID == id {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if t := e.Run(benchScale); len(t.Rows) == 0 {
					b.Fatalf("%s produced no rows", id)
				}
			}
			return
		}
	}
	b.Fatalf("unknown experiment %s", id)
}

func BenchmarkExp01_Operators(b *testing.B)        { runExp(b, "E01") }
func BenchmarkExp02_Scheduler(b *testing.B)        { runExp(b, "E02") }
func BenchmarkExp03_LoadShedding(b *testing.B)     { runExp(b, "E03") }
func BenchmarkExp04_BoxSliding(b *testing.B)       { runExp(b, "E04") }
func BenchmarkExp05_FilterSplit(b *testing.B)      { runExp(b, "E05") }
func BenchmarkExp06_TumbleSplit(b *testing.B)      { runExp(b, "E06") }
func BenchmarkExp07_LoadSharing(b *testing.B)      { runExp(b, "E07") }
func BenchmarkExp08_KSafety(b *testing.B)          { runExp(b, "E08") }
func BenchmarkExp09_RecoverySpectrum(b *testing.B) { runExp(b, "E09") }
func BenchmarkExp10_QoSInference(b *testing.B)     { runExp(b, "E10") }
func BenchmarkExp11_Multiplexing(b *testing.B)     { runExp(b, "E11") }
func BenchmarkExp12_DHTCatalog(b *testing.B)       { runExp(b, "E12") }
func BenchmarkExp13_SplitPredicates(b *testing.B)  { runExp(b, "E13") }
func BenchmarkExp14_Economy(b *testing.B)          { runExp(b, "E14") }
func BenchmarkExp15_RemoteDefinition(b *testing.B) { runExp(b, "E15") }
func BenchmarkExp18_ParallelScaling(b *testing.B)  { runExp(b, "E18") }
func BenchmarkExp18b_AutoSplit(b *testing.B)       { runExp(b, "E18B") }
func BenchmarkExp19_Observability(b *testing.B)    { runExp(b, "E19") }
func BenchmarkExp20_LatencySLO(b *testing.B)       { runExp(b, "E20") }
func BenchmarkExp21_HotPath(b *testing.B)          { runExp(b, "E21") }
func BenchmarkAbl01_DetectionTimeout(b *testing.B) { runExp(b, "A01") }
func BenchmarkAbl02_FlowPeriod(b *testing.B)       { runExp(b, "A02") }

// --- Micro-benchmarks of the hot paths ---

func BenchmarkFilterEval(b *testing.B) {
	pred := op.MustParse("(B < 50) && (A != 3)")
	s := stream.MustSchema("t",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt})
	op.MustBind(pred, s)
	tp := stream.NewTuple(stream.Int(7), stream.Int(42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !pred.Eval(tp).AsBool() {
			b.Fatal("predicate flipped")
		}
	}
}

func BenchmarkTumbleProcess(b *testing.B) {
	tb := op.MustBuild(op.Spec{Kind: "tumble", Params: map[string]string{
		"agg": "cnt", "on": "B", "groupby": "A"}})
	s := stream.MustSchema("t",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt})
	if _, err := tb.Bind([]*stream.Schema{s}); err != nil {
		b.Fatal(err)
	}
	sinkFn := func(int, stream.Tuple) {}
	tuples := make([]stream.Tuple, 64)
	for i := range tuples {
		tuples[i] = stream.NewTuple(stream.Int(int64(i/8)), stream.Int(int64(i)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Process(0, tuples[i%64], sinkFn)
	}
}

func BenchmarkCodecEncodeDecode(b *testing.B) {
	m := transport.Msg{Stream: "quotes", Kind: transport.KindData, BaseSeq: 1,
		Tuples: []stream.Tuple{
			{Seq: 1, TS: 100, Vals: []stream.Value{
				stream.String("IBM"), stream.Float(101.25), stream.Int(300)}},
		}}
	buf := transport.Encode(nil, m)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		buf = transport.Encode(buf[:0], m)
		if _, _, err := transport.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWFQ(b *testing.B) {
	w := transport.NewWFQ()
	for s := 0; s < 8; s++ {
		w.SetWeight(fmt.Sprint(s), float64(s+1))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := fmt.Sprint(i % 8)
		w.Enqueue(s, 100, transport.Msg{Stream: s})
		w.Next()
	}
}

func BenchmarkEngineSteadyState(b *testing.B) {
	readings := dsps.MustSchema("r",
		dsps.Field{Name: "sensor", Kind: dsps.KindInt},
		dsps.Field{Name: "v", Kind: dsps.KindFloat})
	q, err := dsps.NewQuery("bench").
		AddBox("f", dsps.FilterSpec("v > 0.0", false)).
		AddBox("t", dsps.TumbleSpec("cnt", "v", "sensor")).
		Connect("f", "t").
		BindInput("in", readings, "f", 0).
		BindOutput("out", "t", 0, nil).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := dsps.NewEngine(q, dsps.EngineConfig{})
	if err != nil {
		b.Fatal(err)
	}
	eng.OnOutput(func(string, dsps.Tuple) {})
	tp := dsps.NewTuple(dsps.Int(1), dsps.Float(2.5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Ingest("in", tp)
		if i%128 == 0 {
			eng.RunUntilIdle(0)
		}
	}
	eng.Drain()
}

func BenchmarkEngineParallelDrain(b *testing.B) {
	// The worker-pool counterpart of EngineSteadyState: four independent
	// chains, four workers, bursts drained through RunParallel via Run().
	readings := dsps.MustSchema("r",
		dsps.Field{Name: "sensor", Kind: dsps.KindInt},
		dsps.Field{Name: "v", Kind: dsps.KindFloat})
	qb := dsps.NewQuery("benchpar")
	inputs := make([]string, 4)
	for c := 0; c < 4; c++ {
		f, t := fmt.Sprintf("f%d", c), fmt.Sprintf("t%d", c)
		inputs[c] = fmt.Sprintf("in%d", c)
		qb.AddBox(f, dsps.FilterSpec("v > 0.0", false)).
			AddBox(t, dsps.TumbleSpec("cnt", "v", "sensor")).
			Connect(f, t).
			BindInput(inputs[c], readings, f, 0).
			BindOutput(fmt.Sprintf("out%d", c), t, 0, nil)
	}
	q, err := qb.Build()
	if err != nil {
		b.Fatal(err)
	}
	eng, err := dsps.NewEngine(q, dsps.EngineConfig{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	tp := dsps.NewTuple(dsps.Int(1), dsps.Float(2.5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Ingest(inputs[i%4], tp)
		if i%512 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	eng.Drain()
}

func BenchmarkCodecRoundTripPooled(b *testing.B) {
	// The caller-provided-buffer path of the pooled codec: Encode into a
	// retained buffer, DecodeInto a warm Msg. Steady state allocates
	// nothing (numeric payload), vs 4 allocs/op for the copying Decode.
	m := transport.Msg{Stream: "quotes", Kind: transport.KindData, BaseSeq: 1,
		Tuples: []stream.Tuple{
			{Seq: 1, TS: 100, Vals: []stream.Value{
				stream.Int(7), stream.Float(101.25), stream.Int(300)}},
		}}
	buf := transport.Encode(nil, m)
	var dec transport.Msg
	if _, err := transport.DecodeInto(&dec, buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		buf = transport.Encode(buf[:0], m)
		if _, err := transport.DecodeInto(&dec, buf); err != nil {
			b.Fatal(err)
		}
	}
}
